//! Randomized bit-exactness: the compiled block execution engine must
//! agree with the per-point interpreter — same array contents, same
//! deterministic counters — across random affine accesses, random
//! statement bodies, random block shapes, scratchpad staging on/off
//! and double buffering on/off. Plus a directed check that an
//! out-of-bounds access on the compiled engine's guarded addressing
//! path surfaces as the same typed error the interpreter raises.

use polymem_core::tiling::transform::{tile_program, TileSpec};
use polymem_ir::expr::v;
use polymem_ir::{exec_program, ArrayStore, Expr, IrError, LinExpr, Program, ProgramBuilder};
use polymem_machine::{execute_blocked, BlockedKernel, MachineConfig, MachineError};
use proptest::prelude::*;

/// A 2-D two-statement program with randomized affine reads and
/// bodies. All access shapes keep indices inside A's padded extents
/// for i, j in [0, N-1].
fn random_program(shape: u8, body_sel: u8, c: (i64, i64, i64, i64)) -> Program {
    let (c0, c1, swap, c3) = c;
    let mut b = ProgramBuilder::new("rnd", ["N"]);
    b.array("A", &[v("N") + 4, v("N") + 4]);
    b.array("C", &[v("N"), v("N")]);
    let r1 = if swap == 1 {
        [v("j") + c3, v("i")]
    } else {
        [v("i") + c3, v("j") + c1]
    };
    let body = match body_sel {
        0 => Expr::add(Expr::Read(0), Expr::Read(1)),
        1 => Expr::mul(Expr::Read(0), Expr::Read(1)),
        2 => Expr::add(Expr::mul(Expr::Read(0), Expr::Const(3)), Expr::Iter(0)),
        3 => Expr::sub(Expr::Read(0), Expr::add(Expr::Read(1), Expr::Iter(1))),
        4 => Expr::add(Expr::div(Expr::Read(0), Expr::Const(3)), Expr::Read(1)),
        _ => Expr::sub(Expr::mul(Expr::Read(1), Expr::Param(0)), Expr::Read(0)),
    };
    b.stmt("S1")
        .loops(&[
            ("i", LinExpr::c(0), v("N") - 1),
            ("j", LinExpr::c(0), v("N") - 1),
        ])
        .write("C", &[v("i"), v("j")])
        .read("A", &[v("i") + c0, v("j") + c1])
        .read("A", &[r1[0].clone(), r1[1].clone()])
        .body(body)
        .done();
    if shape >= 1 {
        // A second statement reading the first one's output array, so
        // interleaved source order across statements matters.
        b.stmt("S2")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("C", &[v("i"), v("j")])
            .read("C", &[v("i"), v("j")])
            .read("A", &[v("j"), v("i")])
            .body(Expr::add(
                Expr::mul(Expr::Read(0), Expr::Const(2)),
                Expr::Read(1),
            ))
            .done();
    }
    b.build().unwrap()
}

fn kernel_for(p: &Program, ti: u32, tj: u32, mode: u8) -> BlockedKernel {
    let t = tile_program(
        p,
        &TileSpec::new(&[("i", ti as i64), ("j", tj as i64)], "T"),
    )
    .unwrap();
    match mode {
        // All-parallel blocks, DRAM-only or staged.
        0 | 1 => BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into(), "jT".into()],
            seq_dims: vec![],
            thread_dims: vec![],
            use_scratchpad: mode == 1,
        },
        // Sequential sub-tiles inside each block (sync or pipelined).
        _ => BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into()],
            seq_dims: vec!["jT".into()],
            thread_dims: vec![],
            use_scratchpad: true,
        },
    }
}

fn fresh_store(p: &Program, n: i64) -> ArrayStore {
    let mut st = ArrayStore::for_program(p, &[n]).unwrap();
    st.fill_with("A", |ix| ix[0] * 101 + ix[1] * 7 - 50)
        .unwrap();
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled and interpreted execution are indistinguishable:
    /// identical final arrays (both equal to the reference
    /// interpreter's) and identical deterministic counters.
    #[test]
    fn compiled_execution_is_bit_exact(
        n in 6i64..=11,
        ti in 2u32..=4,
        tj in 2u32..=4,
        mode in 0u8..=3,
        shape in 0u8..=2,
        body_sel in 0u8..=5,
        c in (0i64..=2, 0i64..=2, 0i64..=1, 0i64..=2),
    ) {
        let p = random_program(shape, body_sel, c);
        let k = kernel_for(&p, ti, tj, mode);
        let mut cfg = if mode >= 2 {
            MachineConfig::cell_like()
        } else {
            MachineConfig::geforce_8800_gtx()
        };
        cfg.double_buffer = mode == 3;

        let mut reference = fresh_store(&p, n);
        exec_program(&p, &[n], &mut reference).unwrap();

        let mut interp = fresh_store(&p, n);
        cfg.compiled_exec = false;
        let s_interp = execute_blocked(&k, &[n], &mut interp, &cfg, false).unwrap();

        let mut compiled = fresh_store(&p, n);
        cfg.compiled_exec = true;
        let s_compiled = execute_blocked(&k, &[n], &mut compiled, &cfg, false).unwrap();

        prop_assert_eq!(compiled.data("C").unwrap(), reference.data("C").unwrap());
        prop_assert_eq!(interp.data("C").unwrap(), reference.data("C").unwrap());
        // `ExecStats` equality covers every deterministic counter and
        // ignores wall-clock compute time.
        prop_assert_eq!(s_compiled, s_interp);
    }
}

#[test]
fn guarded_fallback_reports_typed_out_of_bounds() {
    // A[i + N] can never be proven in-bounds (it never is), so the
    // compiled engine lowers it to guarded addressing — which must
    // surface the same typed error as `ArrayStore::get`.
    let mut b = ProgramBuilder::new("oob", ["N"]);
    b.array("A", &[v("N")]);
    b.array("C", &[v("N")]);
    b.stmt("S")
        .loops(&[("i", LinExpr::c(0), v("N") - 1)])
        .write("C", &[v("i")])
        .read("A", &[v("i") + v("N")])
        .body(Expr::Read(0))
        .done();
    let p = b.build().unwrap();
    let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
    let k = BlockedKernel {
        program: t,
        round_dims: vec![],
        block_dims: vec!["iT".into()],
        seq_dims: vec![],
        thread_dims: vec![],
        use_scratchpad: false,
    };
    let mut cfg = MachineConfig::geforce_8800_gtx();
    cfg.compiled_exec = true;
    let mut st = ArrayStore::for_program(&p, &[8]).unwrap();
    match execute_blocked(&k, &[8], &mut st, &cfg, false) {
        Err(MachineError::Ir(IrError::OutOfBounds { array, index })) => {
            assert_eq!(array, "A");
            assert_eq!(index, vec![8]);
        }
        other => panic!("expected a typed out-of-bounds error, got {other:?}"),
    }
}
