//! Reference sequential interpreter.
//!
//! Executes a [`Program`] in *source order*: all statement instances
//! sorted by their shared outer-loop values (matched by dimension
//! name), tie-broken by textual statement order, then by inner loop
//! values. This defines the semantics every transformed program
//! (tiled, scratchpad-buffered) must preserve; the test-suites compare
//! final array contents bit-exactly against this interpreter.

use crate::program::{Access, Program};
use crate::{IrError, Result};
use polymem_poly::count::enumerate_points;
use std::cmp::Ordering;
use std::collections::HashMap;

/// One array's storage: flat row-major data plus its extents.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ArrayEntry {
    name: String,
    data: Vec<i64>,
    extents: Vec<i64>,
}

/// Flat row-major storage for every array of a program.
///
/// Arrays are held in *program declaration order* and addressable two
/// ways: by name (convenient, one hash lookup) or by dense id
/// ([`ArrayStore::id_of`] + the `*_by_id` accessors, no hashing).
/// When the store was built with [`ArrayStore::for_program`], the id
/// of an array equals its index in `program.arrays`, so executors can
/// resolve names once per program and run every access id-based.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayStore {
    index: HashMap<String, usize>,
    entries: Vec<ArrayEntry>,
}

impl ArrayStore {
    /// Allocate zero-initialised storage for all arrays of a program
    /// at the given parameter values.
    pub fn for_program(program: &Program, params: &[i64]) -> Result<ArrayStore> {
        if params.len() != program.params.len() {
            return Err(IrError::BadParams {
                expected: program.params.len(),
                got: params.len(),
            });
        }
        let mut store = ArrayStore {
            index: HashMap::new(),
            entries: Vec::with_capacity(program.arrays.len()),
        };
        for a in &program.arrays {
            let extents = a.eval_extents(&program.params, params)?;
            if extents.iter().any(|&e| e < 0) {
                return Err(IrError::OutOfBounds {
                    array: a.name.clone(),
                    index: extents.clone(),
                });
            }
            let size: i64 = extents.iter().product();
            store.index.insert(a.name.clone(), store.entries.len());
            store.entries.push(ArrayEntry {
                name: a.name.clone(),
                data: vec![0i64; size as usize],
                extents,
            });
        }
        Ok(store)
    }

    fn entry(&self, array: &str) -> Result<&ArrayEntry> {
        self.index
            .get(array)
            .map(|&id| &self.entries[id])
            .ok_or_else(|| IrError::UnknownArray(array.to_string()))
    }

    fn entry_mut(&mut self, array: &str) -> Result<&mut ArrayEntry> {
        match self.index.get(array) {
            Some(&id) => Ok(&mut self.entries[id]),
            None => Err(IrError::UnknownArray(array.to_string())),
        }
    }

    /// Dense id of an array (its index in the originating program's
    /// declaration order), or `None` if unknown.
    pub fn id_of(&self, array: &str) -> Option<usize> {
        self.index.get(array).copied()
    }

    /// Name of the array with dense id `id`.
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn name_of(&self, id: usize) -> &str {
        &self.entries[id].name
    }

    /// Read one element (row-major).
    pub fn get(&self, array: &str, index: &[i64]) -> Result<i64> {
        let e = self.entry(array)?;
        let off = flat_offset(&e.name, index, &e.extents)?;
        Ok(e.data[off])
    }

    /// Write one element (row-major).
    pub fn set(&mut self, array: &str, index: &[i64], value: i64) -> Result<()> {
        let e = self.entry_mut(array)?;
        let off = flat_offset(&e.name, index, &e.extents)?;
        e.data[off] = value;
        Ok(())
    }

    /// Read one element by dense id (no name hashing).
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn get_by_id(&self, id: usize, index: &[i64]) -> Result<i64> {
        let e = &self.entries[id];
        let off = flat_offset(&e.name, index, &e.extents)?;
        Ok(e.data[off])
    }

    /// Write one element by dense id (no name hashing).
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn set_by_id(&mut self, id: usize, index: &[i64], value: i64) -> Result<()> {
        let e = &mut self.entries[id];
        let off = flat_offset(&e.name, index, &e.extents)?;
        e.data[off] = value;
        Ok(())
    }

    /// Borrow an array's flat data.
    pub fn data(&self, array: &str) -> Result<&[i64]> {
        Ok(self.entry(array)?.data.as_slice())
    }

    /// Mutably borrow an array's flat data.
    pub fn data_mut(&mut self, array: &str) -> Result<&mut [i64]> {
        Ok(self.entry_mut(array)?.data.as_mut_slice())
    }

    /// Borrow an array's flat data by dense id.
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn data_by_id(&self, id: usize) -> &[i64] {
        &self.entries[id].data
    }

    /// Mutably borrow an array's flat data by dense id.
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn data_mut_by_id(&mut self, id: usize) -> &mut [i64] {
        &mut self.entries[id].data
    }

    /// An array's extents.
    pub fn extents(&self, array: &str) -> Result<&[i64]> {
        Ok(self.entry(array)?.extents.as_slice())
    }

    /// An array's extents by dense id.
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn extents_by_id(&self, id: usize) -> &[i64] {
        &self.entries[id].extents
    }

    /// Fill an array by calling `f` with each multi-index.
    pub fn fill_with(&mut self, array: &str, mut f: impl FnMut(&[i64]) -> i64) -> Result<()> {
        let ArrayEntry { data, extents, .. } = self.entry_mut(array)?;
        let mut idx = vec![0i64; extents.len()];
        for cell in data.iter_mut() {
            *cell = f(&idx);
            // Increment the row-major multi-index.
            for d in (0..extents.len()).rev() {
                idx[d] += 1;
                if idx[d] < extents[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(())
    }

    /// Names of all arrays.
    pub fn array_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names
    }
}

fn flat_offset(array: &str, index: &[i64], extents: &[i64]) -> Result<usize> {
    if index.len() != extents.len() {
        return Err(IrError::OutOfBounds {
            array: array.to_string(),
            index: index.to_vec(),
        });
    }
    let mut off: i64 = 0;
    for (&i, &e) in index.iter().zip(extents) {
        if i < 0 || i >= e {
            return Err(IrError::OutOfBounds {
                array: array.to_string(),
                index: index.to_vec(),
            });
        }
        off = off * e + i;
    }
    Ok(off as usize)
}

/// Resolve every program array to its dense store id, once.
///
/// `ids[k]` is the store id of `program.arrays[k]`; accesses carry
/// array indices into `program.arrays`, so executors index this table
/// instead of hashing names per access.
pub fn resolve_array_ids(program: &Program, store: &ArrayStore) -> Result<Vec<usize>> {
    program
        .arrays
        .iter()
        .map(|a| {
            store
                .id_of(&a.name)
                .ok_or_else(|| IrError::UnknownArray(a.name.clone()))
        })
        .collect()
}

/// Execute one statement instance against a store.
pub fn exec_statement_instance(
    program: &Program,
    stmt_idx: usize,
    point: &[i64],
    params: &[i64],
    store: &mut ArrayStore,
) -> Result<()> {
    let ids = resolve_array_ids(program, store)?;
    exec_resolved(program, &ids, stmt_idx, point, params, store)
}

/// Execute one statement instance with pre-resolved array ids.
fn exec_resolved(
    program: &Program,
    ids: &[usize],
    stmt_idx: usize,
    point: &[i64],
    params: &[i64],
    store: &mut ArrayStore,
) -> Result<()> {
    let stmt = &program.stmts[stmt_idx];
    let read_one = |acc: &Access, store: &ArrayStore| -> Result<i64> {
        let idx = acc.map.apply(point, params)?;
        store.get_by_id(ids[acc.array], &idx)
    };
    let mut reads = Vec::with_capacity(stmt.reads.len());
    for r in &stmt.reads {
        reads.push(read_one(r, store)?);
    }
    let value = stmt.body.eval(&reads, point, params)?;
    let widx = stmt.write.map.apply(point, params)?;
    store.set_by_id(ids[stmt.write.array], &widx, value)
}

/// Execute a whole program in source order.
///
/// Instances are ordered by interleaving on name-shared outer loops:
/// compare the common named prefix of the two statements' iteration
/// vectors, then textual statement order, then the remaining inner
/// coordinates.
pub fn exec_program(program: &Program, params: &[i64], store: &mut ArrayStore) -> Result<()> {
    program.validate()?;
    // Collect all instances.
    let mut instances: Vec<(usize, Vec<i64>)> = Vec::new();
    for (si, s) in program.stmts.iter().enumerate() {
        let dom = s.domain.substitute_params(params)?;
        enumerate_points(&dom, u64::MAX, &mut |p| instances.push((si, p.to_vec())))?;
    }
    // Precompute pairwise common depths.
    let n = program.stmts.len();
    let mut common = vec![vec![0usize; n]; n];
    for (a, row) in common.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            *cell = program.common_depth(a, b);
        }
    }
    instances.sort_by(|(sa, pa), (sb, pb)| {
        let c = common[*sa][*sb];
        for k in 0..c {
            match pa[k].cmp(&pb[k]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        match sa.cmp(sb) {
            Ordering::Equal => pa[c..].cmp(&pb[c..]),
            o => o,
        }
    });
    // Resolve array names to dense ids once; the instance loop then
    // performs no per-access name hashing.
    let ids = resolve_array_ids(program, store)?;
    for (si, point) in &instances {
        exec_resolved(program, &ids, *si, point, params, store)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::{v, Expr, LinExpr};

    #[test]
    fn store_roundtrip_and_bounds() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N"), v("N") + 1]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), LinExpr::c(0))])
            .write("A", &[v("i"), v("i")])
            .body(Expr::Const(0))
            .done();
        let p = b.build().unwrap();
        let mut st = ArrayStore::for_program(&p, &[3]).unwrap();
        st.set("A", &[2, 3], 42).unwrap();
        assert_eq!(st.get("A", &[2, 3]).unwrap(), 42);
        assert_eq!(st.get("A", &[0, 0]).unwrap(), 0);
        assert!(st.get("A", &[3, 0]).is_err());
        assert!(st.get("A", &[0, 4]).is_err());
        assert!(st.get("A", &[-1, 0]).is_err());
        assert!(st.get("B", &[0]).is_err());
        assert_eq!(st.extents("A").unwrap(), &[3, 4]);
    }

    #[test]
    fn fill_with_row_major_order() {
        let mut b = ProgramBuilder::new("p", Vec::<String>::new());
        b.array("A", &[LinExpr::c(2), LinExpr::c(3)]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), LinExpr::c(0))])
            .write("A", &[v("i"), v("i")])
            .body(Expr::Const(0))
            .done();
        let p = b.build().unwrap();
        let mut st = ArrayStore::for_program(&p, &[]).unwrap();
        st.fill_with("A", |idx| idx[0] * 10 + idx[1]).unwrap();
        assert_eq!(st.data("A").unwrap(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn executes_prefix_sum_style_recurrence() {
        // for i in 1..=N-1: A[i] = A[i-1] + A[i]  (source order matters)
        let mut b = ProgramBuilder::new("scan", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(1), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i") - 1])
            .read("A", &[v("i")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let mut st = ArrayStore::for_program(&p, &[5]).unwrap();
        st.fill_with("A", |_| 1).unwrap();
        exec_program(&p, &[5], &mut st).unwrap();
        assert_eq!(st.data("A").unwrap(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn interleaves_statements_sharing_outer_loops() {
        // Fig. 1 style: S1 at depth (i), S2 at depth (i, k); S2 of
        // iteration i must see S1(i)'s write.
        let mut b = ProgramBuilder::new("inter", ["N"]);
        b.array("A", &[v("N")]);
        b.array("B", &[v("N"), v("N")]);
        b.stmt("S1")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .body(Expr::add(Expr::Iter(0), Expr::Const(100)))
            .done();
        b.stmt("S2")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("k", LinExpr::c(0), v("N") - 1),
            ])
            .write("B", &[v("i"), v("k")])
            .read("A", &[v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let mut st = ArrayStore::for_program(&p, &[3]).unwrap();
        exec_program(&p, &[3], &mut st).unwrap();
        // Every B[i][k] sees A[i] = i + 100 written by S1 in the same i.
        for i in 0..3 {
            for k in 0..3 {
                assert_eq!(st.get("B", &[i, k]).unwrap(), i + 100);
            }
        }
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let mut b = ProgramBuilder::new("oob", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i") + 1]) // writes A[N] at i = N-1
            .body(Expr::Const(1))
            .done();
        let p = b.build().unwrap();
        let mut st = ArrayStore::for_program(&p, &[4]).unwrap();
        assert!(matches!(
            exec_program(&p, &[4], &mut st),
            Err(IrError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn wrong_param_count_is_reported() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), LinExpr::c(0))])
            .write("A", &[v("i")])
            .body(Expr::Const(0))
            .done();
        let p = b.build().unwrap();
        assert!(matches!(
            ArrayStore::for_program(&p, &[]),
            Err(IrError::BadParams {
                expected: 1,
                got: 0
            })
        ));
    }
}
