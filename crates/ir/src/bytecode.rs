//! Flat stack-machine bytecode for statement bodies.
//!
//! The reference interpreter walks the [`Expr`] tree for every
//! statement instance: each node is a match, a pair of recursive
//! calls, and a bounds-checked slot lookup that can fail. The
//! compiled block execution engine instead lowers each body once per
//! launch into a postfix instruction sequence. Read/iterator/param
//! indices are validated at compile time ("preflight"), so the hot
//! loop performs no per-node index `Result` — only the checked
//! arithmetic that [`Expr::eval`] itself performs, with identical
//! error messages so the compiled engine stays bit-compatible with
//! the interpreter even on failure paths.
//!
//! Evaluation order matches the interpreter exactly, including the
//! quirk that `Div` evaluates its *divisor* first and reports
//! "division by zero" before the dividend is ever evaluated: `Div`
//! compiles to `[divisor code] CheckDiv [dividend code] Div` where
//! [`ByteOp::CheckDiv`] inspects the stack top without popping it.

use crate::expr::Expr;
use crate::{IrError, Result};

/// One postfix instruction. Operands are pushed; operators pop their
/// inputs (top of stack = rightmost/latest-evaluated operand) and
/// push one result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByteOp {
    /// Push `reads[i]`.
    Read(u32),
    /// Push `iter[i]` (a coordinate of the statement instance).
    Iter(u32),
    /// Push `params[i]`.
    Param(u32),
    /// Push an immediate constant.
    Const(i64),
    /// Pop b, a; push `a + b` (checked).
    Add,
    /// Pop b, a; push `a - b` (checked).
    Sub,
    /// Pop b, a; push `a * b` (checked).
    Mul,
    /// Error with "division by zero" if the stack top is 0. Does not
    /// pop: the divisor stays for the matching [`ByteOp::Div`].
    CheckDiv,
    /// Pop dividend a (top), then divisor b; push `a / b`
    /// (truncating, like the interpreter).
    Div,
    /// Pop b, a; push `min(a, b)`.
    Min,
    /// Pop b, a; push `max(a, b)`.
    Max,
    /// Pop a; push `|a|`.
    Abs,
}

/// A compiled statement body: postfix ops plus the stack high-water
/// mark, so callers can reserve the evaluation stack once per block
/// and keep the per-instance loop allocation-free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BodyCode {
    ops: Vec<ByteOp>,
    max_stack: usize,
}

impl BodyCode {
    /// Compile `expr` for a statement with `n_reads` read slots,
    /// `n_iters` domain dimensions, and `n_params` program
    /// parameters. Out-of-range slot references are rejected here,
    /// with the same messages [`Expr::eval`] would produce at run
    /// time.
    pub fn compile(expr: &Expr, n_reads: usize, n_iters: usize, n_params: usize) -> Result<Self> {
        let mut code = BodyCode {
            ops: Vec::new(),
            max_stack: 0,
        };
        let mut depth = 0usize;
        code.emit(expr, n_reads, n_iters, n_params, &mut depth)?;
        debug_assert_eq!(depth, 1);
        Ok(code)
    }

    /// Reconstruct a body from a raw instruction stream (e.g. one
    /// deserialized from a plan artifact). The stream is validated the
    /// same way [`BodyCode::compile`] builds it: slot indices are
    /// preflighted against the statement's shape, every operator must
    /// find its operands on the stack, `CheckDiv` needs a divisor to
    /// inspect, and exactly one value must remain at the end. The
    /// high-water mark is recomputed here rather than trusted from the
    /// wire, so a decoded body can never over- or under-reserve its
    /// evaluation stack nor index out of its slot arrays.
    pub fn from_ops(
        ops: Vec<ByteOp>,
        n_reads: usize,
        n_iters: usize,
        n_params: usize,
    ) -> Result<Self> {
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for op in &ops {
            match op {
                ByteOp::Read(i) => {
                    if *i as usize >= n_reads {
                        return Err(IrError::Arithmetic("read index out of range"));
                    }
                    depth += 1;
                    max_stack = max_stack.max(depth);
                }
                ByteOp::Iter(i) => {
                    if *i as usize >= n_iters {
                        return Err(IrError::Arithmetic("iterator index out of range"));
                    }
                    depth += 1;
                    max_stack = max_stack.max(depth);
                }
                ByteOp::Param(i) => {
                    if *i as usize >= n_params {
                        return Err(IrError::Arithmetic("param index out of range"));
                    }
                    depth += 1;
                    max_stack = max_stack.max(depth);
                }
                ByteOp::Const(_) => {
                    depth += 1;
                    max_stack = max_stack.max(depth);
                }
                ByteOp::Add
                | ByteOp::Sub
                | ByteOp::Mul
                | ByteOp::Div
                | ByteOp::Min
                | ByteOp::Max => {
                    if depth < 2 {
                        return Err(IrError::Arithmetic("bytecode stack underflow"));
                    }
                    depth -= 1;
                }
                ByteOp::CheckDiv | ByteOp::Abs => {
                    if depth < 1 {
                        return Err(IrError::Arithmetic("bytecode stack underflow"));
                    }
                }
            }
        }
        if depth != 1 {
            return Err(IrError::Arithmetic("bytecode leaves wrong stack depth"));
        }
        Ok(BodyCode { ops, max_stack })
    }

    fn push(&mut self, op: ByteOp, depth: &mut usize) {
        self.ops.push(op);
        match op {
            ByteOp::Read(_) | ByteOp::Iter(_) | ByteOp::Param(_) | ByteOp::Const(_) => {
                *depth += 1;
                self.max_stack = self.max_stack.max(*depth);
            }
            ByteOp::Add | ByteOp::Sub | ByteOp::Mul | ByteOp::Div | ByteOp::Min | ByteOp::Max => {
                *depth -= 1
            }
            ByteOp::CheckDiv | ByteOp::Abs => {}
        }
    }

    fn emit(
        &mut self,
        expr: &Expr,
        n_reads: usize,
        n_iters: usize,
        n_params: usize,
        depth: &mut usize,
    ) -> Result<()> {
        let bin = |a: &Expr, b: &Expr, op: ByteOp, s: &mut Self, d: &mut usize| -> Result<()> {
            s.emit(a, n_reads, n_iters, n_params, d)?;
            s.emit(b, n_reads, n_iters, n_params, d)?;
            s.push(op, d);
            Ok(())
        };
        match expr {
            Expr::Read(i) => {
                if *i >= n_reads {
                    return Err(IrError::Arithmetic("read index out of range"));
                }
                self.push(ByteOp::Read(*i as u32), depth);
            }
            Expr::Iter(i) => {
                if *i >= n_iters {
                    return Err(IrError::Arithmetic("iterator index out of range"));
                }
                self.push(ByteOp::Iter(*i as u32), depth);
            }
            Expr::Param(i) => {
                if *i >= n_params {
                    return Err(IrError::Arithmetic("param index out of range"));
                }
                self.push(ByteOp::Param(*i as u32), depth);
            }
            Expr::Const(c) => self.push(ByteOp::Const(*c), depth),
            Expr::Add(a, b) => bin(a, b, ByteOp::Add, self, depth)?,
            Expr::Sub(a, b) => bin(a, b, ByteOp::Sub, self, depth)?,
            Expr::Mul(a, b) => bin(a, b, ByteOp::Mul, self, depth)?,
            Expr::Min(a, b) => bin(a, b, ByteOp::Min, self, depth)?,
            Expr::Max(a, b) => bin(a, b, ByteOp::Max, self, depth)?,
            Expr::Div(a, b) => {
                // Interpreter order: divisor, zero check, dividend.
                self.emit(b, n_reads, n_iters, n_params, depth)?;
                self.push(ByteOp::CheckDiv, depth);
                self.emit(a, n_reads, n_iters, n_params, depth)?;
                self.push(ByteOp::Div, depth);
            }
            Expr::Abs(a) => {
                self.emit(a, n_reads, n_iters, n_params, depth)?;
                self.push(ByteOp::Abs, depth);
            }
        }
        Ok(())
    }

    /// Stack high-water mark; `stack` passed to [`BodyCode::eval`]
    /// should reserve this much once to avoid growth in the loop.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// The instruction sequence (for inspection/tests).
    pub fn ops(&self) -> &[ByteOp] {
        &self.ops
    }

    /// Evaluate against filled slots. `stack` is caller-provided
    /// scratch, cleared on entry, so repeated evaluation allocates
    /// nothing once it has grown to [`BodyCode::max_stack`].
    ///
    /// Arithmetic semantics (checked ops, truncating division,
    /// divisor-first `Div`) and error messages match [`Expr::eval`].
    pub fn eval(
        &self,
        stack: &mut Vec<i64>,
        reads: &[i64],
        iter: &[i64],
        params: &[i64],
    ) -> Result<i64> {
        stack.clear();
        stack.reserve(self.max_stack);
        for op in &self.ops {
            match *op {
                ByteOp::Read(i) => stack.push(reads[i as usize]),
                ByteOp::Iter(i) => stack.push(iter[i as usize]),
                ByteOp::Param(i) => stack.push(params[i as usize]),
                ByteOp::Const(c) => stack.push(c),
                ByteOp::Add => {
                    let b = stack.pop().expect("bytecode stack");
                    let a = stack.last_mut().expect("bytecode stack");
                    *a = a
                        .checked_add(b)
                        .ok_or(IrError::Arithmetic("overflow in add"))?;
                }
                ByteOp::Sub => {
                    let b = stack.pop().expect("bytecode stack");
                    let a = stack.last_mut().expect("bytecode stack");
                    *a = a
                        .checked_sub(b)
                        .ok_or(IrError::Arithmetic("overflow in sub"))?;
                }
                ByteOp::Mul => {
                    let b = stack.pop().expect("bytecode stack");
                    let a = stack.last_mut().expect("bytecode stack");
                    *a = a
                        .checked_mul(b)
                        .ok_or(IrError::Arithmetic("overflow in mul"))?;
                }
                ByteOp::CheckDiv => {
                    if *stack.last().expect("bytecode stack") == 0 {
                        return Err(IrError::Arithmetic("division by zero"));
                    }
                }
                ByteOp::Div => {
                    let a = stack.pop().expect("bytecode stack");
                    let b = stack.last_mut().expect("bytecode stack");
                    *b = a / *b;
                }
                ByteOp::Min => {
                    let b = stack.pop().expect("bytecode stack");
                    let a = stack.last_mut().expect("bytecode stack");
                    *a = (*a).min(b);
                }
                ByteOp::Max => {
                    let b = stack.pop().expect("bytecode stack");
                    let a = stack.last_mut().expect("bytecode stack");
                    *a = (*a).max(b);
                }
                ByteOp::Abs => {
                    let a = stack.last_mut().expect("bytecode stack");
                    *a = a.abs();
                }
            }
        }
        debug_assert_eq!(stack.len(), 1);
        Ok(stack.pop().expect("bytecode stack"))
    }

    /// Evaluate `lanes` consecutive instances in one pass, structure-
    /// of-arrays over the stack: every stack slot holds `lanes`
    /// values, operators sweep each op across all lanes before the
    /// next op runs. Lane `l` sees `reads[r * lanes + l]` for read
    /// slot `r`, iterator `vary` at `iter[vary] + l`, and every other
    /// slot exactly as [`BodyCode::eval`] would. Results land in
    /// `out` (cleared first), one value per lane, identical to `lanes`
    /// scalar evaluations.
    ///
    /// On checked-arithmetic failure the batch aborts with *an* error,
    /// but op-major order means it may not be the error the first
    /// failing lane would report under scalar order — callers needing
    /// exact scalar error semantics re-run the lanes serially through
    /// [`BodyCode::eval`] on any `Err` (the compiled engine does; the
    /// batch has no side effects to undo).
    #[allow(clippy::too_many_arguments)]
    pub fn eval_lanes(
        &self,
        stack: &mut Vec<i64>,
        reads: &[i64],
        lanes: usize,
        iter: &[i64],
        vary: Option<usize>,
        params: &[i64],
        out: &mut Vec<i64>,
    ) -> Result<()> {
        debug_assert!(lanes >= 1);
        debug_assert_eq!(reads.len() % lanes.max(1), 0);
        stack.clear();
        stack.reserve(self.max_stack * lanes);
        /// Pop the top lane slot, apply `f` lane-wise onto the slot
        /// below it.
        macro_rules! binop {
            ($f:expr) => {{
                let n = stack.len();
                let (a, b) = stack[n - 2 * lanes..].split_at_mut(lanes);
                for (x, &y) in a.iter_mut().zip(b.iter()) {
                    *x = $f(*x, y)?;
                }
                stack.truncate(n - lanes);
            }};
        }
        for op in &self.ops {
            match *op {
                ByteOp::Read(i) => {
                    let i = i as usize;
                    stack.extend_from_slice(&reads[i * lanes..(i + 1) * lanes]);
                }
                ByteOp::Iter(i) => {
                    let i = i as usize;
                    let v = iter[i];
                    if vary == Some(i) {
                        stack.extend((0..lanes as i64).map(|l| v + l));
                    } else {
                        stack.extend(std::iter::repeat_n(v, lanes));
                    }
                }
                ByteOp::Param(i) => {
                    stack.extend(std::iter::repeat_n(params[i as usize], lanes));
                }
                ByteOp::Const(c) => stack.extend(std::iter::repeat_n(c, lanes)),
                ByteOp::Add => binop!(|a: i64, b: i64| a
                    .checked_add(b)
                    .ok_or(IrError::Arithmetic("overflow in add"))),
                ByteOp::Sub => binop!(|a: i64, b: i64| a
                    .checked_sub(b)
                    .ok_or(IrError::Arithmetic("overflow in sub"))),
                ByteOp::Mul => binop!(|a: i64, b: i64| a
                    .checked_mul(b)
                    .ok_or(IrError::Arithmetic("overflow in mul"))),
                ByteOp::CheckDiv => {
                    let n = stack.len();
                    if stack[n - lanes..].contains(&0) {
                        return Err(IrError::Arithmetic("division by zero"));
                    }
                }
                ByteOp::Div => {
                    // Dividend is the top slot, divisor below; the
                    // divisor slot receives `a / b` like scalar `Div`.
                    let n = stack.len();
                    let (b, a) = stack[n - 2 * lanes..].split_at_mut(lanes);
                    for (d, &x) in b.iter_mut().zip(a.iter()) {
                        *d = x / *d;
                    }
                    stack.truncate(n - lanes);
                }
                ByteOp::Min => binop!(|a: i64, b: i64| Ok::<i64, IrError>(a.min(b))),
                ByteOp::Max => binop!(|a: i64, b: i64| Ok::<i64, IrError>(a.max(b))),
                ByteOp::Abs => {
                    let n = stack.len();
                    for x in &mut stack[n - lanes..] {
                        *x = x.abs();
                    }
                }
            }
        }
        debug_assert_eq!(stack.len(), lanes);
        out.clear();
        out.extend_from_slice(stack);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(e: Expr) -> Box<Expr> {
        Box::new(e)
    }

    fn msg(e: IrError) -> &'static str {
        match e {
            IrError::Arithmetic(m) => m,
            other => panic!("expected arithmetic error, got {other:?}"),
        }
    }

    /// A moderately deep body exercising every operator.
    fn sample() -> Expr {
        // abs(min(r0 + i0 * p0, max(r1 - 3, i1))) + (r0 / (p0 - 1))
        Expr::Add(
            b(Expr::Abs(b(Expr::Min(
                b(Expr::Add(
                    b(Expr::Read(0)),
                    b(Expr::Mul(b(Expr::Iter(0)), b(Expr::Param(0)))),
                )),
                b(Expr::Max(
                    b(Expr::Sub(b(Expr::Read(1)), b(Expr::Const(3)))),
                    b(Expr::Iter(1)),
                )),
            )))),
            b(Expr::Div(
                b(Expr::Read(0)),
                b(Expr::Sub(b(Expr::Param(0)), b(Expr::Const(1)))),
            )),
        )
    }

    #[test]
    fn matches_interpreter_on_grid() {
        let e = sample();
        let code = BodyCode::compile(&e, 2, 2, 1).unwrap();
        let mut stack = Vec::new();
        for r0 in -4..4 {
            for r1 in -4..4 {
                for i0 in -2..2 {
                    for p0 in -2..3 {
                        let reads = [r0, r1];
                        let iter = [i0, 7];
                        let params = [p0];
                        let want = e.eval(&reads, &iter, &params);
                        let got = code.eval(&mut stack, &reads, &iter, &params);
                        match (want, got) {
                            (Ok(a), Ok(b)) => assert_eq!(a, b),
                            (Err(a), Err(b)) => assert_eq!(msg(a), msg(b)),
                            (w, g) => panic!("diverged: interp {w:?}, compiled {g:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn division_by_zero_matches_interpreter_order() {
        // Interpreter checks the divisor before evaluating the
        // dividend, so an overflowing dividend is never reached.
        let e = Expr::Div(
            b(Expr::Mul(
                b(Expr::Const(i64::MAX)),
                b(Expr::Const(i64::MAX)),
            )),
            b(Expr::Const(0)),
        );
        let code = BodyCode::compile(&e, 0, 0, 0).unwrap();
        let mut stack = Vec::new();
        let want = e.eval(&[], &[], &[]).unwrap_err();
        let got = code.eval(&mut stack, &[], &[], &[]).unwrap_err();
        assert_eq!(msg(want), "division by zero");
        assert_eq!(msg(got), "division by zero");
    }

    #[test]
    fn truncating_division() {
        let e = Expr::Div(b(Expr::Const(-7)), b(Expr::Const(2)));
        let code = BodyCode::compile(&e, 0, 0, 0).unwrap();
        assert_eq!(code.eval(&mut Vec::new(), &[], &[], &[]).unwrap(), -3);
    }

    #[test]
    fn out_of_range_slots_rejected_at_compile_time() {
        for (e, want) in [
            (Expr::Read(2), "read index out of range"),
            (Expr::Iter(1), "iterator index out of range"),
            (Expr::Param(0), "param index out of range"),
        ] {
            let err = BodyCode::compile(&e, 2, 1, 0).unwrap_err();
            assert_eq!(msg(err), want);
        }
    }

    #[test]
    fn eval_lanes_matches_scalar_eval() {
        let e = sample();
        let code = BodyCode::compile(&e, 2, 2, 1).unwrap();
        let (mut stack, mut out) = (Vec::new(), Vec::new());
        let lanes = 4usize;
        // reads laid out slot-major: r0 lanes then r1 lanes.
        let reads = [3, 4, 5, 6, -2, 0, 7, 1];
        let iter = [2i64, 9];
        let params = [5i64];
        code.eval_lanes(&mut stack, &reads, lanes, &iter, Some(1), &params, &mut out)
            .unwrap();
        assert_eq!(out.len(), lanes);
        for l in 0..lanes {
            let rl = [reads[l], reads[lanes + l]];
            let il = [iter[0], iter[1] + l as i64];
            let want = code.eval(&mut stack, &rl, &il, &params).unwrap();
            assert_eq!(out[l], want, "lane {l}");
        }
        // No varying iterator: every lane sees the base point.
        code.eval_lanes(&mut stack, &reads, lanes, &iter, None, &params, &mut out)
            .unwrap();
        let want = code.eval(&mut stack, &[reads[0], reads[lanes]], &iter, &params);
        assert_eq!(out[0], want.unwrap());
    }

    #[test]
    fn eval_lanes_aborts_batch_on_any_lane_error() {
        // r0 / r1 with a zero divisor in lane 2 only.
        let e = Expr::Div(b(Expr::Read(0)), b(Expr::Read(1)));
        let code = BodyCode::compile(&e, 2, 0, 0).unwrap();
        let (mut stack, mut out) = (Vec::new(), Vec::new());
        let reads = [8, 9, 10, 2, 0, 5];
        let err = code
            .eval_lanes(&mut stack, &reads, 3, &[], None, &[], &mut out)
            .unwrap_err();
        assert_eq!(msg(err), "division by zero");
        let ok = [8, 9, 10, 2, 1, 5];
        code.eval_lanes(&mut stack, &ok, 3, &[], None, &[], &mut out)
            .unwrap();
        assert_eq!(out, vec![4, 9, 2]);
    }

    #[test]
    fn from_ops_round_trips_compiled_bodies() {
        let e = sample();
        let code = BodyCode::compile(&e, 2, 2, 1).unwrap();
        let rebuilt = BodyCode::from_ops(code.ops().to_vec(), 2, 2, 1).unwrap();
        assert_eq!(rebuilt, code);
        assert_eq!(rebuilt.max_stack(), code.max_stack());
    }

    #[test]
    fn from_ops_rejects_malformed_streams() {
        // Operator with no operands.
        assert_eq!(
            msg(BodyCode::from_ops(vec![ByteOp::Add], 0, 0, 0).unwrap_err()),
            "bytecode stack underflow"
        );
        // CheckDiv on an empty stack.
        assert_eq!(
            msg(BodyCode::from_ops(vec![ByteOp::CheckDiv], 0, 0, 0).unwrap_err()),
            "bytecode stack underflow"
        );
        // Two values left on the stack.
        assert_eq!(
            msg(BodyCode::from_ops(vec![ByteOp::Const(1), ByteOp::Const(2)], 0, 0, 0).unwrap_err()),
            "bytecode leaves wrong stack depth"
        );
        // Slot out of range for the statement shape.
        assert_eq!(
            msg(BodyCode::from_ops(vec![ByteOp::Read(3)], 2, 0, 0).unwrap_err()),
            "read index out of range"
        );
        assert_eq!(
            msg(BodyCode::from_ops(vec![ByteOp::Iter(0)], 0, 0, 0).unwrap_err()),
            "iterator index out of range"
        );
        assert_eq!(
            msg(BodyCode::from_ops(vec![ByteOp::Param(9)], 0, 0, 1).unwrap_err()),
            "param index out of range"
        );
    }

    #[test]
    fn max_stack_bounds_evaluation() {
        let e = sample();
        let code = BodyCode::compile(&e, 2, 2, 1).unwrap();
        assert!(code.max_stack() >= 2);
        let mut stack = Vec::with_capacity(code.max_stack());
        code.eval(&mut stack, &[1, 2], &[3, 4], &[5]).unwrap();
        assert!(stack.capacity() >= code.max_stack());
    }
}
