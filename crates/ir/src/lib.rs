//! Affine program IR for the polymem framework.
//!
//! A [`program::Program`] is the paper's "program block": a
//! set of statements with affine iteration domains
//! ([`Polyhedron`](polymem_poly::Polyhedron)) and affine array access
//! functions ([`AffineMap`](polymem_poly::AffineMap)), plus arithmetic
//! statement bodies ([`expr::Expr`]) so programs can actually be
//! *executed* — polymem validates every transformation by running the
//! original and transformed programs and comparing array contents.
//!
//! Values are `i64`: integer arithmetic is associative, so instance
//! reordering introduced by tiling cannot change results, making
//! bit-exact equivalence checks meaningful.
//!
//! * [`expr`] — linear expression builder (for constraints/accesses)
//!   and the arithmetic expression tree of statement bodies;
//! * [`program`] — arrays, statements, programs;
//! * [`builder`] — ergonomic construction of affine loop nests;
//! * [`exec`] — the reference sequential interpreter (source order);
//! * [`bytecode`] — flat stack-machine lowering of statement bodies
//!   for the compiled block execution engine.

pub mod builder;
pub mod bytecode;
pub mod exec;
pub mod expr;
pub mod gen;
pub mod parse;
pub mod program;

pub use builder::{DomainBuilder, ProgramBuilder};
pub use bytecode::{BodyCode, ByteOp};
pub use exec::{exec_program, exec_statement_instance, ArrayStore};
pub use expr::{Expr, LinExpr};
pub use gen::{init_random_store, random_program};
pub use parse::parse_program;
pub use program::{Access, ArrayDecl, Program, Statement};

use std::fmt;

/// Errors surfaced while building or executing IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A polyhedral operation failed.
    Poly(polymem_poly::PolyError),
    /// Reference to an unknown array name.
    UnknownArray(String),
    /// Reference to an unknown dimension/parameter name.
    UnknownName(String),
    /// An array access evaluated outside the array's extents.
    OutOfBounds {
        /// Array being accessed.
        array: String,
        /// The offending index vector.
        index: Vec<i64>,
    },
    /// Statement body arithmetic failed (division by zero / overflow).
    Arithmetic(&'static str),
    /// Mismatched parameter count when executing.
    BadParams {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Poly(e) => write!(f, "polyhedral error: {e}"),
            IrError::UnknownArray(a) => write!(f, "unknown array `{a}`"),
            IrError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            IrError::OutOfBounds { array, index } => {
                write!(f, "access to `{array}` out of bounds at {index:?}")
            }
            IrError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            IrError::BadParams { expected, got } => {
                write!(f, "expected {expected} parameter values, got {got}")
            }
        }
    }
}

impl std::error::Error for IrError {}

impl From<polymem_poly::PolyError> for IrError {
    fn from(e: polymem_poly::PolyError) -> Self {
        IrError::Poly(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, IrError>;
