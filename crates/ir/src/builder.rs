//! Ergonomic construction of affine programs.
//!
//! [`ProgramBuilder`] + [`StatementBuilder`] let kernels be written the
//! way the paper writes them — named loops with inclusive affine
//! bounds, subscripts as [`LinExpr`]s — and lower everything to the
//! polyhedral representation ([`Polyhedron`] domains, [`AffineMap`]
//! accesses).

use crate::expr::{Expr, LinExpr};
use crate::program::{Access, ArrayDecl, Program, Statement};
use crate::{IrError, Result};
use polymem_linalg::IMat;
use polymem_poly::{AffineMap, Constraint, Polyhedron, Space};

/// Builds a [`Polyhedron`] from named inclusive bounds and extra
/// affine constraints.
#[derive(Clone, Debug)]
pub struct DomainBuilder {
    dims: Vec<String>,
    params: Vec<String>,
    constraints: Vec<Constraint>,
}

impl DomainBuilder {
    /// Start a domain over the given dims and params.
    pub fn new(
        dims: impl IntoIterator<Item = impl Into<String>>,
        params: impl IntoIterator<Item = impl Into<String>>,
    ) -> DomainBuilder {
        DomainBuilder {
            dims: dims.into_iter().map(Into::into).collect(),
            params: params.into_iter().map(Into::into).collect(),
            constraints: Vec::new(),
        }
    }

    /// Add `lo <= hi` (i.e. `hi - lo >= 0`).
    pub fn le(&mut self, lo: LinExpr, hi: LinExpr) -> Result<&mut Self> {
        let row = (hi - lo).to_row(&self.dims, &self.params)?;
        self.constraints.push(Constraint::ineq(row));
        Ok(self)
    }

    /// Add `a == b`.
    pub fn eq(&mut self, a: LinExpr, b: LinExpr) -> Result<&mut Self> {
        let row = (a - b).to_row(&self.dims, &self.params)?;
        self.constraints.push(Constraint::eq(row));
        Ok(self)
    }

    /// Add inclusive bounds `lb <= var <= ub`.
    pub fn bound(&mut self, var: &str, lb: LinExpr, ub: LinExpr) -> Result<&mut Self> {
        let v = LinExpr::var(var);
        self.le(lb, v.clone())?;
        self.le(v, ub)?;
        Ok(self)
    }

    /// Finish into a polyhedron.
    pub fn build(&self) -> Polyhedron {
        Polyhedron::new(
            Space::new(self.dims.clone(), self.params.clone()),
            self.constraints.clone(),
        )
    }
}

/// Builder for a whole [`Program`].
pub struct ProgramBuilder {
    name: String,
    params: Vec<String>,
    arrays: Vec<ArrayDecl>,
    stmts: Vec<Statement>,
    error: Option<IrError>,
}

impl ProgramBuilder {
    /// Start a program with the given parameter names.
    pub fn new(
        name: impl Into<String>,
        params: impl IntoIterator<Item = impl Into<String>>,
    ) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
            arrays: Vec::new(),
            stmts: Vec::new(),
            error: None,
        }
    }

    /// Declare an array with per-dimension extents.
    pub fn array(&mut self, name: impl Into<String>, extents: &[LinExpr]) -> &mut Self {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            extents: extents.to_vec(),
        });
        self
    }

    /// Start a statement; finish it with
    /// [`StatementBuilder::done`].
    pub fn stmt(&mut self, name: impl Into<String>) -> StatementBuilder<'_> {
        StatementBuilder {
            program: self,
            name: name.into(),
            loops: Vec::new(),
            extra: Vec::new(),
            write: None,
            reads: Vec::new(),
            body: Expr::Const(0),
        }
    }

    /// Index of a parameter by name (used by the text frontend).
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p == name)
    }

    /// Finish the program (validates it).
    pub fn build(self) -> Result<Program> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let p = Program {
            name: self.name,
            params: self.params,
            arrays: self.arrays,
            stmts: self.stmts,
        };
        p.validate()?;
        Ok(p)
    }
}

/// Builder for one statement within a [`ProgramBuilder`].
pub struct StatementBuilder<'a> {
    program: &'a mut ProgramBuilder,
    name: String,
    loops: Vec<(String, LinExpr, LinExpr)>,
    extra: Vec<(LinExpr, LinExpr, bool)>, // (a, b, is_eq): a <= b or a == b
    write: Option<(String, Vec<LinExpr>)>,
    reads: Vec<(String, Vec<LinExpr>)>,
    body: Expr,
}

impl<'a> StatementBuilder<'a> {
    /// Declare the loop nest, outermost first, with inclusive bounds.
    pub fn loops(mut self, loops: &[(&str, LinExpr, LinExpr)]) -> Self {
        self.loops = loops
            .iter()
            .map(|(n, lb, ub)| (n.to_string(), lb.clone(), ub.clone()))
            .collect();
        self
    }

    /// Add an extra affine guard `lo <= hi`.
    pub fn guard_le(mut self, lo: LinExpr, hi: LinExpr) -> Self {
        self.extra.push((lo, hi, false));
        self
    }

    /// Add an extra affine guard `a == b`.
    pub fn guard_eq(mut self, a: LinExpr, b: LinExpr) -> Self {
        self.extra.push((a, b, true));
        self
    }

    /// Set the written reference.
    pub fn write(mut self, array: &str, subscripts: &[LinExpr]) -> Self {
        self.write = Some((array.to_string(), subscripts.to_vec()));
        self
    }

    /// Add a read reference (referenced by `Expr::Read(k)` in order).
    pub fn read(mut self, array: &str, subscripts: &[LinExpr]) -> Self {
        self.reads.push((array.to_string(), subscripts.to_vec()));
        self
    }

    /// Set the right-hand side.
    pub fn body(mut self, body: Expr) -> Self {
        self.body = body;
        self
    }

    /// Lower and attach the statement to the program.
    pub fn done(self) {
        let result = self.lower();
        match result {
            Ok(stmt) => self.program.stmts.push(stmt),
            Err(e) => {
                if self.program.error.is_none() {
                    self.program.error = Some(e);
                }
            }
        }
    }

    fn lower(&self) -> Result<Statement> {
        let dims: Vec<String> = self.loops.iter().map(|(n, _, _)| n.clone()).collect();
        let params = self.program.params.clone();
        let mut db = DomainBuilder::new(dims.clone(), params.clone());
        for (n, lb, ub) in &self.loops {
            db.bound(n, lb.clone(), ub.clone())?;
        }
        for (a, b, is_eq) in &self.extra {
            if *is_eq {
                db.eq(a.clone(), b.clone())?;
            } else {
                db.le(a.clone(), b.clone())?;
            }
        }
        let domain = db.build();
        let in_space = domain.space().clone();

        let lower_access = |array: &str, subs: &[LinExpr]| -> Result<Access> {
            let idx = self
                .program
                .arrays
                .iter()
                .position(|a| a.name == array)
                .ok_or_else(|| IrError::UnknownArray(array.to_string()))?;
            let decl = &self.program.arrays[idx];
            if decl.rank() != subs.len() {
                return Err(IrError::UnknownArray(format!(
                    "array `{array}` has rank {}, subscript has {}",
                    decl.rank(),
                    subs.len()
                )));
            }
            let mut mat = IMat::zeros(0, 0);
            for s in subs {
                mat.push_row(&s.to_row(&dims, &params)?);
            }
            let out_space = Space::new(
                (0..subs.len()).map(|k| format!("{array}_{k}")),
                params.clone(),
            );
            Ok(Access {
                array: idx,
                map: AffineMap::new(in_space.clone(), out_space, mat),
            })
        };

        let (warr, wsubs) = self.write.as_ref().ok_or_else(|| {
            IrError::UnknownArray(format!("statement `{}` has no write", self.name))
        })?;
        let write = lower_access(warr, wsubs)?;
        let reads = self
            .reads
            .iter()
            .map(|(a, s)| lower_access(a, s))
            .collect::<Result<Vec<_>>>()?;
        Ok(Statement {
            name: self.name.clone(),
            domain,
            write,
            reads,
            body: self.body.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::v;

    #[test]
    fn domain_builder_bounds() {
        let mut db = DomainBuilder::new(["i", "j"], ["N"]);
        db.bound("i", LinExpr::c(0), v("N") - 1).unwrap();
        db.bound("j", LinExpr::c(0), v("i")).unwrap();
        let d = db.build();
        assert!(d.contains(&[3, 2], &[5]));
        assert!(!d.contains(&[3, 4], &[5]));
        assert!(!d.contains(&[5, 0], &[5]));
    }

    #[test]
    fn domain_builder_equality_and_unknown_names() {
        let mut db = DomainBuilder::new(["i", "j"], ["N"]);
        db.eq(v("i"), v("j") * 2).unwrap();
        let d = db.build();
        assert!(d.contains(&[4, 2], &[9]));
        assert!(!d.contains(&[3, 2], &[9]));
        assert!(db.le(v("i"), v("qq")).is_err());
    }

    #[test]
    fn statement_builder_lowers_accesses() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("A", &[v("i"), v("j")])
            .read("A", &[v("i") + v("j"), v("j") + 1])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let s = &p.stmts[0];
        assert_eq!(s.depth(), 2);
        assert_eq!(s.reads.len(), 1);
        // Read map applied to (i, j) = (2, 3), N = 10: (5, 4).
        assert_eq!(s.reads[0].map.apply(&[2, 3], &[10]).unwrap(), vec![5, 4]);
    }

    #[test]
    fn builder_surfaces_errors_at_build() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N"))])
            .write("B", &[v("i")]) // unknown array
            .body(Expr::Const(0))
            .done();
        assert!(matches!(b.build(), Err(IrError::UnknownArray(_))));
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N"))])
            .write("A", &[v("i")]) // rank 1 subscript on rank-2 array
            .body(Expr::Const(0))
            .done();
        assert!(b.build().is_err());
    }

    #[test]
    fn guards_restrict_domains() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .guard_le(v("i") * 2, v("N")) // only lower half
            .write("A", &[v("i")])
            .body(Expr::Const(1))
            .done();
        let p = b.build().unwrap();
        let d = &p.stmts[0].domain;
        assert!(d.contains(&[5], &[10]));
        assert!(!d.contains(&[6], &[10]));
    }
}
