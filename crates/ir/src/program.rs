//! Arrays, statements and programs.
//!
//! A [`Program`] models the paper's *program block*: statements with
//! affine iteration domains and affine accesses over declared arrays,
//! sharing a list of symbolic parameters (problem sizes). Statements
//! may sit at different nesting depths but share outer loops *by
//! dimension name* (as in the paper's Fig. 1, where `S1` lives in the
//! `(i, j)` nest and `S2` in `(i, j, k)`).

use crate::expr::{Expr, LinExpr};
use crate::{IrError, Result};
use polymem_poly::{AffineMap, Polyhedron};
use std::fmt;

/// An array declaration: a name plus per-dimension extents as linear
/// expressions of the program parameters (`A[N][N+1]`).
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Per-dimension extent expressions (over parameters only).
    pub extents: Vec<LinExpr>,
}

impl ArrayDecl {
    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Evaluate extents for concrete parameter values.
    pub fn eval_extents(&self, param_names: &[String], params: &[i64]) -> Result<Vec<i64>> {
        self.extents
            .iter()
            .map(|e| e.eval(&|n| param_names.iter().position(|p| p == n).map(|k| params[k])))
            .collect()
    }
}

/// One array reference: which array and the affine subscript map from
/// the statement's iteration space to the array's data space.
#[derive(Clone, Debug)]
pub struct Access {
    /// Index into [`Program::arrays`].
    pub array: usize,
    /// Subscript map (`in` = statement domain space, `out` = data space).
    pub map: AffineMap,
}

/// A statement: `write = body(reads)` over an iteration domain.
#[derive(Clone, Debug)]
pub struct Statement {
    /// Statement name (e.g. `"S1"`).
    pub name: String,
    /// Iteration domain; dims are this statement's loop iterators
    /// outermost-first, params are the program parameters.
    pub domain: Polyhedron,
    /// The written reference.
    pub write: Access,
    /// Read references, indexed by [`Expr::Read`].
    pub reads: Vec<Access>,
    /// Right-hand side.
    pub body: Expr,
}

impl Statement {
    /// Nesting depth (number of surrounding loops).
    pub fn depth(&self) -> usize {
        self.domain.n_dims()
    }

    /// Loop iterator names, outermost first.
    pub fn iter_names(&self) -> &[String] {
        self.domain.space().dims()
    }
}

/// A program block.
#[derive(Clone, Debug)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Parameter names (problem sizes).
    pub params: Vec<String>,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Statements in textual order.
    pub stmts: Vec<Statement>,
}

impl Program {
    /// Find an array index by name.
    pub fn array_index(&self, name: &str) -> Result<usize> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| IrError::UnknownArray(name.to_string()))
    }

    /// All accesses (reads and writes) to array `a`, as
    /// `(stmt index, access, is_write)` triples — the input the
    /// data-management framework consumes (`S_1..S_q` with their
    /// `F`/`G` matrices, §3.1).
    pub fn accesses_to(&self, a: usize) -> Vec<(usize, &Access, bool)> {
        let mut out = Vec::new();
        for (si, s) in self.stmts.iter().enumerate() {
            if s.write.array == a {
                out.push((si, &s.write, true));
            }
            for r in &s.reads {
                if r.array == a {
                    out.push((si, r, false));
                }
            }
        }
        out
    }

    /// True iff array `a` is only read (an *input array* in the
    /// paper's §3.1.4 sense).
    pub fn is_input_array(&self, a: usize) -> bool {
        self.stmts.iter().all(|s| s.write.array != a)
            && self
                .stmts
                .iter()
                .any(|s| s.reads.iter().any(|r| r.array == a))
    }

    /// True iff array `a` is only written (an *output array*).
    pub fn is_output_array(&self, a: usize) -> bool {
        self.stmts.iter().any(|s| s.write.array == a)
            && self
                .stmts
                .iter()
                .all(|s| s.reads.iter().all(|r| r.array != a))
    }

    /// Number of loops shared (by name, as a prefix) between two
    /// statements — the "common loops" of dependence analysis.
    pub fn common_depth(&self, s: usize, t: usize) -> usize {
        let a = self.stmts[s].iter_names();
        let b = self.stmts[t].iter_names();
        a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
    }

    /// Validate internal consistency: access maps match their
    /// statement's domain space and their array's rank; read indices
    /// used by bodies exist.
    pub fn validate(&self) -> Result<()> {
        for s in &self.stmts {
            let check = |acc: &Access| -> Result<()> {
                let arr = self
                    .arrays
                    .get(acc.array)
                    .ok_or_else(|| IrError::UnknownArray(format!("#{}", acc.array)))?;
                if acc.map.n_out() != arr.rank() {
                    return Err(IrError::UnknownArray(format!(
                        "access rank {} != array `{}` rank {}",
                        acc.map.n_out(),
                        arr.name,
                        arr.rank()
                    )));
                }
                if !acc.map.in_space().same_shape(s.domain.space()) {
                    return Err(IrError::UnknownName(format!(
                        "access map space mismatch in `{}`",
                        s.name
                    )));
                }
                Ok(())
            };
            check(&s.write)?;
            for r in &s.reads {
                check(r)?;
            }
        }
        Ok(())
    }

    /// Render as pseudo-C (for docs, tests and eyeballing): one loop
    /// nest per statement with its domain's per-level bounds.
    pub fn to_pseudo_c(&self) -> String {
        let mut out = String::new();
        for a in &self.arrays {
            out.push_str(&a.name);
            for e in &a.extents {
                out.push_str(&format!("[{e}]"));
            }
            out.push_str(";\n");
        }
        for s in &self.stmts {
            out.push_str(&format!("// {}\n", s.name));
            let dims = s.domain.space().dims().to_vec();
            let params = s.domain.space().params().to_vec();
            for (d, name) in dims.iter().enumerate() {
                let indent = "  ".repeat(d);
                match polymem_poly::bounds::dim_bounds(&s.domain, d, d) {
                    Ok(b) => {
                        let wrap = |terms: &[polymem_poly::AffineForm], f: &str| {
                            let rendered: Vec<String> = terms
                                .iter()
                                .map(|t| t.display(&dims[..d], &params))
                                .collect();
                            if rendered.len() == 1 {
                                rendered.into_iter().next().expect("len checked")
                            } else {
                                format!("{f}({})", rendered.join(", "))
                            }
                        };
                        let lb = wrap(&b.lower.terms, "max");
                        let ub = wrap(&b.upper.terms, "min");
                        out.push_str(&format!(
                            "{indent}for ({name} = {lb}; {name} <= {ub}; {name}++)\n"
                        ));
                    }
                    Err(_) => out.push_str(&format!("{indent}for ({name} = ?; ?; {name}++)\n")),
                }
            }
            let indent = "  ".repeat(dims.len());
            out.push_str(&format!(
                "{indent}{} = f({});\n",
                self.render_access(&s.write),
                s.reads
                    .iter()
                    .map(|r| self.render_access(r))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out
    }

    /// Render one access as source text, e.g. `A[i + 1][k]`.
    pub fn render_access(&self, acc: &Access) -> String {
        let arr = &self.arrays[acc.array];
        let m = acc.map.matrix();
        let in_space = acc.map.in_space();
        let mut s = arr.name.clone();
        for r in 0..acc.map.n_out() {
            let mut term = String::new();
            for j in 0..in_space.n_dims() {
                append_term(&mut term, m[(r, j)], in_space.dim_name(j));
            }
            for j in 0..in_space.n_params() {
                append_term(
                    &mut term,
                    m[(r, in_space.n_dims() + j)],
                    in_space.param_name(j),
                );
            }
            let k = m[(r, in_space.n_cols() - 1)];
            if term.is_empty() {
                term = k.to_string();
            } else if k > 0 {
                term.push_str(&format!(" + {k}"));
            } else if k < 0 {
                term.push_str(&format!(" - {}", -k));
            }
            s.push_str(&format!("[{term}]"));
        }
        s
    }
}

fn append_term(s: &mut String, c: i64, name: &str) {
    if c == 0 {
        return;
    }
    if s.is_empty() {
        if c == -1 {
            s.push('-');
        } else if c != 1 {
            s.push_str(&format!("{c}*"));
        }
    } else if c > 0 {
        s.push_str(" + ");
        if c != 1 {
            s.push_str(&format!("{c}*"));
        }
    } else {
        s.push_str(" - ");
        if c != -1 {
            s.push_str(&format!("{}*", -c));
        }
    }
    s.push_str(name);
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pseudo_c())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::v;

    fn simple_program() -> Program {
        // for i in 0..N-1: B[i] = A[i] + A[i+1]
        let mut b = ProgramBuilder::new("sum", ["N"]);
        b.array("A", &[v("N") + 1]);
        b.array("B", &[v("N")]);
        b.stmt("S1")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("B", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn classification() {
        let p = simple_program();
        let a = p.array_index("A").unwrap();
        let b = p.array_index("B").unwrap();
        assert!(p.is_input_array(a));
        assert!(!p.is_output_array(a));
        assert!(p.is_output_array(b));
        assert!(!p.is_input_array(b));
        assert!(p.array_index("C").is_err());
    }

    #[test]
    fn accesses_to_collects_all_references() {
        let p = simple_program();
        let a = p.array_index("A").unwrap();
        let accs = p.accesses_to(a);
        assert_eq!(accs.len(), 2);
        assert!(accs.iter().all(|(_, _, w)| !w));
        let b = p.array_index("B").unwrap();
        let accs = p.accesses_to(b);
        assert_eq!(accs.len(), 1);
        assert!(accs[0].2);
    }

    #[test]
    fn validation_passes_and_extents_evaluate() {
        let p = simple_program();
        p.validate().unwrap();
        let a = &p.arrays[0];
        assert_eq!(a.eval_extents(&p.params, &[10]).unwrap(), vec![11]);
    }

    #[test]
    fn pseudo_c_rendering_mentions_structure() {
        let p = simple_program();
        let c = p.to_pseudo_c();
        assert!(c.contains("for (i"), "{c}");
        assert!(c.contains("B[i]"), "{c}");
        assert!(c.contains("A[i + 1]"), "{c}");
    }

    #[test]
    fn common_depth_by_name() {
        let mut b = ProgramBuilder::new("two", ["N"]);
        b.array("A", &[v("N") * 2]);
        b.stmt("S1")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .body(Expr::Const(1))
            .done();
        b.stmt("S2")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("i")),
            ])
            .write("A", &[v("j") + v("N")])
            .body(Expr::Const(2))
            .done();
        let p = b.build().unwrap();
        assert_eq!(p.common_depth(0, 1), 1);
        assert_eq!(p.common_depth(1, 1), 2);
    }
}
