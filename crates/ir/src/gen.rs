//! Deterministic random affine-program generator.
//!
//! [`random_program`] draws a small stencil-like pipeline from a seed:
//! 1–3 statements, each a perfect 2-deep `i, j` nest over
//! `0 .. N-1`, writing its own output array and reading the previous
//! stage's array at a handful of affine offset taps. Every program it
//! returns is a valid [`Program`] (validated by the builder) whose
//! accesses stay in bounds for any `N >= 1`, so the reference
//! interpreter, the §3 analysis, and the simulator can all run it —
//! the autotuner's `--random` mode and the property-based tests use
//! this as a fuzzing front end for the whole pipeline.
//!
//! Determinism matters more than statistical quality here: the same
//! seed must reproduce the same program across runs and platforms, so
//! the generator is a self-contained splitmix64 with no global state.

use crate::expr::v;
use crate::{Expr, LinExpr, Program, ProgramBuilder};

/// splitmix64: tiny, deterministic, good enough to decorrelate the
/// handful of draws one program needs.
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0 .. n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generate a random affine program from `seed`.
///
/// Shape: parameter `N`; arrays `A0` (input) through `Ak`, each
/// `(N+2) × (N+2)` so a one-cell halo keeps every offset tap in
/// bounds; statement `s` is
///
/// ```text
/// for i in 0..N-1, j in 0..N-1:
///   A(s+1)[i+1][j+1] = f(A(s)[i+1+di][j+1+dj], ...)
/// ```
///
/// with 1–3 taps, offsets in `{-1, 0, 1}`, and a body folding the
/// taps with `+`/`-` and small constant scales (no read×read
/// products, so chained stages cannot overflow `i64`).
pub fn random_program(seed: u64) -> Program {
    let mut rng = Rng::new(seed);
    let n_stmts = 1 + rng.below(3) as usize;
    let mut b = ProgramBuilder::new(format!("rand{seed:016x}"), ["N"]);
    let ext = [v("N") + 2, v("N") + 2];
    for s in 0..=n_stmts {
        b.array(format!("A{s}"), &ext);
    }
    for s in 0..n_stmts {
        let n_taps = 1 + rng.below(3) as usize;
        let mut taps: Vec<(i64, i64)> = Vec::new();
        for _ in 0..n_taps {
            let di = rng.below(3) as i64 - 1;
            let dj = rng.below(3) as i64 - 1;
            if !taps.contains(&(di, dj)) {
                taps.push((di, dj));
            }
        }
        let mut body = scaled_tap(0, &mut rng);
        for k in 1..taps.len() {
            let rhs = scaled_tap(k, &mut rng);
            body = if rng.below(4) == 0 {
                Expr::sub(body, rhs)
            } else {
                Expr::add(body, rhs)
            };
        }
        let src = format!("A{s}");
        let dst = format!("A{}", s + 1);
        let mut st = b
            .stmt(format!("S{s}"))
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write(&dst, &[v("i") + 1, v("j") + 1]);
        for &(di, dj) in &taps {
            st = st.read(&src, &[v("i") + 1 + di, v("j") + 1 + dj]);
        }
        st.body(body).done();
    }
    b.build()
        .expect("generated programs are valid by construction")
}

/// `c * Read(k)` with `c` in `1..=3` (kept small so chained stages
/// stay far from `i64` overflow).
fn scaled_tap(k: usize, rng: &mut Rng) -> Expr {
    let c = 1 + rng.below(3) as i64;
    if c == 1 {
        Expr::Read(k)
    } else {
        Expr::mul(Expr::Const(c), Expr::Read(k))
    }
}

/// Deterministically fill every array of a generated program with
/// small values (the interpreter and simulator both start from this).
pub fn init_random_store(program: &Program, store: &mut crate::ArrayStore, seed: u64) {
    for a in &program.arrays {
        if let Ok(data) = store.data_mut(&a.name) {
            let mut rng = Rng::new(seed ^ a.name.len() as u64);
            for v in data.iter_mut() {
                *v = rng.below(16) as i64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exec_program, ArrayStore};

    #[test]
    fn same_seed_same_program() {
        let a = random_program(7);
        let b = random_program(7);
        assert_eq!(format!("{a}"), format!("{b}"));
        let c = random_program(8);
        assert_ne!(format!("{a}"), format!("{c}"));
    }

    /// Property sweep (a hand-rolled proptest strategy): every seed in
    /// a band yields a valid program the interpreter can execute
    /// in-bounds at several sizes.
    #[test]
    fn generated_programs_execute_in_bounds() {
        for seed in 0..24 {
            let p = random_program(seed);
            assert!(!p.stmts.is_empty() && p.stmts.len() <= 3);
            for n in [1, 2, 5] {
                let mut st = ArrayStore::for_program(&p, &[n]).expect("store");
                init_random_store(&p, &mut st, seed);
                exec_program(&p, &[n], &mut st).expect("in-bounds execution");
            }
        }
    }

    #[test]
    fn init_is_deterministic() {
        let p = random_program(3);
        let mut a = ArrayStore::for_program(&p, &[4]).expect("store");
        let mut b = ArrayStore::for_program(&p, &[4]).expect("store");
        init_random_store(&p, &mut a, 9);
        init_random_store(&p, &mut b, 9);
        assert_eq!(a.data("A0").unwrap(), b.data("A0").unwrap());
    }
}
