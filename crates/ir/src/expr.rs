//! Expressions: linear forms for building constraints/accesses, and
//! arithmetic trees for statement bodies.
//!
//! [`LinExpr`] is a *named* linear expression (`i + 2*j - N + 3`) used
//! by the builder DSL to write constraints and access subscripts the
//! way the paper writes them; it lowers to coefficient rows once the
//! surrounding space is known. [`Expr`] is the run-time arithmetic of
//! a statement body, evaluated over `i64` by the interpreters.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A linear expression over named variables plus a constant.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinExpr {
    /// Coefficient per variable name (absent = 0). BTreeMap keeps
    /// rendering deterministic.
    pub coeffs: BTreeMap<String, i64>,
    /// Constant term.
    pub constant: i64,
}

impl LinExpr {
    /// The variable `name`.
    pub fn var(name: &str) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_string(), 1);
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// A constant.
    pub fn c(value: i64) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: value,
        }
    }

    /// Coefficient of `name` (0 if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.coeffs.get(name).copied().unwrap_or(0)
    }

    /// Lower to a coefficient row over `[dims..., params..., 1]`.
    /// Unknown variable names yield an error.
    pub fn to_row(&self, dims: &[String], params: &[String]) -> crate::Result<Vec<i64>> {
        let mut row = vec![0i64; dims.len() + params.len() + 1];
        for (name, &c) in &self.coeffs {
            if let Some(i) = dims.iter().position(|d| d == name) {
                row[i] = c;
            } else if let Some(i) = params.iter().position(|p| p == name) {
                row[dims.len() + i] = c;
            } else {
                return Err(crate::IrError::UnknownName(name.clone()));
            }
        }
        *row.last_mut().expect("row is never empty") = self.constant;
        Ok(row)
    }

    /// Evaluate at a named environment.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<i64>) -> crate::Result<i64> {
        let mut acc = self.constant;
        for (name, &c) in &self.coeffs {
            let v = env(name).ok_or_else(|| crate::IrError::UnknownName(name.clone()))?;
            acc += c * v;
        }
        Ok(acc)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, &c) in &self.coeffs {
            if c == 0 {
                continue;
            }
            if first {
                if c == -1 {
                    write!(f, "-")?;
                } else if c != 1 {
                    write!(f, "{c}*")?;
                }
                first = false;
            } else if c > 0 {
                write!(f, " + ")?;
                if c != 1 {
                    write!(f, "{c}*")?;
                }
            } else {
                write!(f, " - ")?;
                if c != -1 {
                    write!(f, "{}*", -c)?;
                }
            }
            write!(f, "{name}")?;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (k, v) in rhs.coeffs {
            *self.coeffs.entry(k).or_insert(0) += v;
        }
        self.constant += rhs.constant;
        self.coeffs.retain(|_, v| *v != 0);
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for v in self.coeffs.values_mut() {
            *v = -*v;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: i64) -> LinExpr {
        for v in self.coeffs.values_mut() {
            *v *= k;
        }
        self.constant *= k;
        self.coeffs.retain(|_, v| *v != 0);
        self
    }
}

impl Add<i64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, k: i64) -> LinExpr {
        self.constant += k;
        self
    }
}

impl Sub<i64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, k: i64) -> LinExpr {
        self.constant -= k;
        self
    }
}

/// Shorthand for [`LinExpr::var`].
pub fn v(name: &str) -> LinExpr {
    LinExpr::var(name)
}

/// The arithmetic body of a statement, evaluated over `i64`.
///
/// `Read(k)` refers to the statement's `k`-th read access; `Iter(k)`
/// to the `k`-th iteration-vector coordinate; `Param(k)` to the `k`-th
/// program parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Value of the statement's `k`-th read access.
    Read(usize),
    /// Value of the `k`-th loop iterator.
    Iter(usize),
    /// Value of the `k`-th program parameter.
    Param(usize),
    /// An integer literal.
    Const(i64),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer (truncating) quotient; divisor 0 is an error.
    Div(Box<Expr>, Box<Expr>),
    /// Minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum.
    Max(Box<Expr>, Box<Expr>),
    /// Absolute value.
    Abs(Box<Expr>),
}

// The arithmetic helpers are associated *constructors* taking two
// expressions by value, not `std::ops` methods on `&self`.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Sum helper.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Difference helper.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Product helper.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Quotient helper.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// Minimum helper.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Min(Box::new(a), Box::new(b))
    }

    /// Maximum helper.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Max(Box::new(a), Box::new(b))
    }

    /// Absolute-value helper.
    pub fn abs(a: Expr) -> Expr {
        Expr::Abs(Box::new(a))
    }

    /// Evaluate with wrap-checked arithmetic.
    ///
    /// `reads[k]` is the value of the statement's `k`-th read access at
    /// this instance; `iter` the iteration vector; `params` the
    /// program parameters.
    pub fn eval(&self, reads: &[i64], iter: &[i64], params: &[i64]) -> crate::Result<i64> {
        use Expr::*;
        Ok(match self {
            Read(k) => *reads
                .get(*k)
                .ok_or(crate::IrError::Arithmetic("read index out of range"))?,
            Iter(k) => *iter
                .get(*k)
                .ok_or(crate::IrError::Arithmetic("iterator index out of range"))?,
            Param(k) => *params
                .get(*k)
                .ok_or(crate::IrError::Arithmetic("param index out of range"))?,
            Const(c) => *c,
            Add(a, b) => a
                .eval(reads, iter, params)?
                .checked_add(b.eval(reads, iter, params)?)
                .ok_or(crate::IrError::Arithmetic("overflow in add"))?,
            Sub(a, b) => a
                .eval(reads, iter, params)?
                .checked_sub(b.eval(reads, iter, params)?)
                .ok_or(crate::IrError::Arithmetic("overflow in sub"))?,
            Mul(a, b) => a
                .eval(reads, iter, params)?
                .checked_mul(b.eval(reads, iter, params)?)
                .ok_or(crate::IrError::Arithmetic("overflow in mul"))?,
            Div(a, b) => {
                let d = b.eval(reads, iter, params)?;
                if d == 0 {
                    return Err(crate::IrError::Arithmetic("division by zero"));
                }
                a.eval(reads, iter, params)? / d
            }
            Min(a, b) => a
                .eval(reads, iter, params)?
                .min(b.eval(reads, iter, params)?),
            Max(a, b) => a
                .eval(reads, iter, params)?
                .max(b.eval(reads, iter, params)?),
            Abs(a) => a.eval(reads, iter, params)?.abs(),
        })
    }

    /// Rewrite every `Iter(k)` index through `f` (e.g. to shift
    /// iterator positions after tiling inserts new outer loops).
    pub fn map_iters(&self, f: &dyn Fn(usize) -> usize) -> Expr {
        use Expr::*;
        let go = |e: &Expr| Box::new(e.map_iters(f));
        match self {
            Read(k) => Read(*k),
            Iter(k) => Iter(f(*k)),
            Param(k) => Param(*k),
            Const(c) => Const(*c),
            Add(a, b) => Add(go(a), go(b)),
            Sub(a, b) => Sub(go(a), go(b)),
            Mul(a, b) => Mul(go(a), go(b)),
            Div(a, b) => Div(go(a), go(b)),
            Min(a, b) => Min(go(a), go(b)),
            Max(a, b) => Max(go(a), go(b)),
            Abs(a) => Abs(go(a)),
        }
    }

    /// Number of scalar arithmetic operations in the tree (used by the
    /// machine cost model to charge compute time per instance).
    pub fn op_count(&self) -> u64 {
        use Expr::*;
        match self {
            Read(_) | Iter(_) | Param(_) | Const(_) => 0,
            Add(a, b) | Sub(a, b) | Mul(a, b) | Div(a, b) | Min(a, b) | Max(a, b) => {
                1 + a.op_count() + b.op_count()
            }
            Abs(a) => 1 + a.op_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_building_and_rendering() {
        let e = v("i") * 2 + v("j") - v("N") + 3;
        assert_eq!(e.coeff("i"), 2);
        assert_eq!(e.coeff("j"), 1);
        assert_eq!(e.coeff("N"), -1);
        assert_eq!(e.constant, 3);
        // BTreeMap renders names in lexicographic (ASCII) order.
        assert_eq!(e.to_string(), "-N + 2*i + j + 3");
        assert_eq!(LinExpr::c(-4).to_string(), "-4");
        assert_eq!((v("i") - v("i")).to_string(), "0");
    }

    #[test]
    fn linexpr_lowering() {
        let e = v("i") * 2 - v("N") + 3;
        let row = e.to_row(&["i".into(), "j".into()], &["N".into()]).unwrap();
        assert_eq!(row, vec![2, 0, -1, 3]);
        assert!(v("zz").to_row(&["i".into()], &["N".into()]).is_err());
    }

    #[test]
    fn linexpr_eval() {
        let e = v("i") + v("N") * 3 - 1;
        let val = e
            .eval(&|n| match n {
                "i" => Some(2),
                "N" => Some(10),
                _ => None,
            })
            .unwrap();
        assert_eq!(val, 31);
    }

    #[test]
    fn expr_evaluation() {
        // |reads[0] - reads[1]| + iter[0] * params[0]
        let e = Expr::add(
            Expr::abs(Expr::sub(Expr::Read(0), Expr::Read(1))),
            Expr::mul(Expr::Iter(0), Expr::Param(0)),
        );
        assert_eq!(e.eval(&[3, 10], &[2], &[5]).unwrap(), 17);
        assert_eq!(e.op_count(), 4);
    }

    #[test]
    fn expr_division_semantics() {
        let e = Expr::div(Expr::Const(7), Expr::Const(2));
        assert_eq!(e.eval(&[], &[], &[]).unwrap(), 3);
        let z = Expr::div(Expr::Const(1), Expr::Const(0));
        assert!(z.eval(&[], &[], &[]).is_err());
    }

    #[test]
    fn expr_min_max() {
        let e = Expr::min(Expr::Const(3), Expr::max(Expr::Const(1), Expr::Const(9)));
        assert_eq!(e.eval(&[], &[], &[]).unwrap(), 3);
    }

    #[test]
    fn expr_overflow_detected() {
        let e = Expr::mul(Expr::Const(i64::MAX), Expr::Const(2));
        assert!(e.eval(&[], &[], &[]).is_err());
    }

    #[test]
    fn expr_bad_indices() {
        assert!(Expr::Read(0).eval(&[], &[], &[]).is_err());
        assert!(Expr::Iter(1).eval(&[], &[0], &[]).is_err());
        assert!(Expr::Param(0).eval(&[], &[], &[]).is_err());
    }
}
