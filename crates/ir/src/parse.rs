//! A small text frontend for affine program blocks.
//!
//! The syntax mirrors how the paper writes kernels:
//!
//! ```text
//! # MPEG-4 motion estimation (paper Fig. 2)
//! program me(Ni, Nj, W)
//! array Cur[Ni + W][Nj + W]
//! array Ref[Ni + W][Nj + W]
//! array Sad[Ni][Nj]
//!
//! S1: for i = 0 .. Ni - 1, j = 0 .. Nj - 1, k = 0 .. W - 1, l = 0 .. W - 1 {
//!   Sad[i][j] = Sad[i][j] + abs(Cur[i + k][j + l] - Ref[i + k][j + l])
//! }
//! ```
//!
//! * loop bounds and subscripts are affine expressions over iterators
//!   and parameters (`2*i + N - 1`);
//! * statement bodies are arithmetic over array accesses, iterators,
//!   parameters and integers, with `+ - * /`, `min(a, b)`, `max(a, b)`,
//!   `abs(a)` and parentheses;
//! * `#` starts a line comment.
//!
//! [`parse_program`] lowers straight onto the
//! [`ProgramBuilder`], so parsed
//! programs are first-class: analyzable, tileable, executable.

use crate::builder::{ProgramBuilder, StatementBuilder};
use crate::expr::{Expr, LinExpr};
use crate::program::Program;
use crate::{IrError, Result};

/// Parse a program block from source text.
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = tokenize(src)?;
    Parser { toks, pos: 0 }.program()
}

fn err(line: usize, msg: impl Into<String>) -> IrError {
    IrError::UnknownName(format!("parse error at line {line}: {}", msg.into()))
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(char),
    DotDot,
}

/// Tokenize one logical chunk of source (the whole file; newlines are
/// preserved as `Sym('\n')` so the line-oriented grammar can use them).
fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>> {
    let mut out = Vec::new();
    for (ln, line) in src.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("");
        let mut chars = line.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    chars.next();
                }
                'a'..='z' | 'A'..='Z' | '_' => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push((ln + 1, Tok::Ident(s)));
                }
                '0'..='9' => {
                    let mut v: i64 = 0;
                    while let Some(&c) = chars.peek() {
                        if let Some(d) = c.to_digit(10) {
                            v = v
                                .checked_mul(10)
                                .and_then(|x| x.checked_add(d as i64))
                                .ok_or_else(|| err(ln + 1, "integer literal overflow"))?;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push((ln + 1, Tok::Int(v)));
                }
                '.' => {
                    chars.next();
                    if chars.peek() == Some(&'.') {
                        chars.next();
                        out.push((ln + 1, Tok::DotDot));
                    } else {
                        return Err(err(ln + 1, "stray '.'"));
                    }
                }
                '(' | ')' | '[' | ']' | '{' | '}' | ',' | '=' | '+' | '-' | '*' | '/' | ':' => {
                    chars.next();
                    out.push((ln + 1, Tok::Sym(c)));
                }
                other => return Err(err(ln + 1, format!("unexpected character `{other}`"))),
            }
        }
        out.push((ln + 1, Tok::Sym('\n')));
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).map_or(0, |(l, _)| *l)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn skip_newlines(&mut self) {
        while self.peek() == Some(&Tok::Sym('\n')) {
            self.pos += 1;
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        match self.next() {
            Some(Tok::Sym(x)) if x == c => Ok(()),
            other => Err(err(self.line(), format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(err(
                self.line(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let line = self.line();
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(err(line, format!("expected `{kw}`, found `{id}`")))
        }
    }

    fn program(&mut self) -> Result<Program> {
        self.skip_newlines();
        self.expect_keyword("program")?;
        let name = self.expect_ident()?;
        self.expect_sym('(')?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::Sym(')')) {
            loop {
                params.push(self.expect_ident()?);
                match self.next() {
                    Some(Tok::Sym(',')) => continue,
                    Some(Tok::Sym(')')) => break,
                    other => {
                        return Err(err(
                            self.line(),
                            format!("expected `,` or `)`, found {other:?}"),
                        ))
                    }
                }
            }
        } else {
            self.expect_sym(')')?;
        }
        let mut b = ProgramBuilder::new(name, params);

        loop {
            self.skip_newlines();
            match self.peek() {
                None => break,
                Some(Tok::Ident(kw)) if kw == "array" => {
                    self.next();
                    let aname = self.expect_ident()?;
                    let mut extents = Vec::new();
                    while self.peek() == Some(&Tok::Sym('[')) {
                        self.next();
                        extents.push(self.affine()?);
                        self.expect_sym(']')?;
                    }
                    if extents.is_empty() {
                        return Err(err(self.line(), "array needs at least one extent"));
                    }
                    b.array(aname, &extents);
                }
                Some(Tok::Ident(_)) => {
                    self.statement(&mut b)?;
                }
                other => return Err(err(self.line(), format!("unexpected {other:?}"))),
            }
        }
        b.build()
    }

    /// `Name: for v = lo .. hi (, ...)* { lhs = rhs }`
    fn statement(&mut self, b: &mut ProgramBuilder) -> Result<()> {
        let sname = self.expect_ident()?;
        self.expect_sym(':')?;
        self.expect_keyword("for")?;
        let mut loops: Vec<(String, LinExpr, LinExpr)> = Vec::new();
        loop {
            let var = self.expect_ident()?;
            self.expect_sym('=')?;
            let lo = self.affine()?;
            match self.next() {
                Some(Tok::DotDot) => {}
                other => return Err(err(self.line(), format!("expected `..`, found {other:?}"))),
            }
            let hi = self.affine()?;
            loops.push((var, lo, hi));
            match self.peek() {
                Some(Tok::Sym(',')) => {
                    self.next();
                }
                _ => break,
            }
        }
        self.skip_newlines();
        self.expect_sym('{')?;
        self.skip_newlines();

        // LHS access.
        let (warr, wsubs) = self.access()?;
        self.expect_sym('=')?;

        // RHS expression; collects reads in order of appearance.
        let iters: Vec<String> = loops.iter().map(|(n, _, _)| n.clone()).collect();
        let mut reads: Vec<(String, Vec<LinExpr>)> = Vec::new();
        let body = self.expr(&iters, &mut reads, b)?;
        self.skip_newlines();
        self.expect_sym('}')?;

        let loop_refs: Vec<(&str, LinExpr, LinExpr)> = loops
            .iter()
            .map(|(n, lo, hi)| (n.as_str(), lo.clone(), hi.clone()))
            .collect();
        let mut sb: StatementBuilder<'_> = b.stmt(sname);
        sb = sb.loops(&loop_refs).write(&warr, &wsubs);
        for (arr, subs) in &reads {
            sb = sb.read(arr, subs);
        }
        sb.body(body).done();
        Ok(())
    }

    /// `Name[affine][affine]...`
    fn access(&mut self) -> Result<(String, Vec<LinExpr>)> {
        let name = self.expect_ident()?;
        let mut subs = Vec::new();
        while self.peek() == Some(&Tok::Sym('[')) {
            self.next();
            subs.push(self.affine()?);
            self.expect_sym(']')?;
        }
        if subs.is_empty() {
            return Err(err(
                self.line(),
                format!("access to `{name}` needs subscripts"),
            ));
        }
        Ok((name, subs))
    }

    /// Affine expression: sum of terms `int`, `var`, `int*var`, `var*int`.
    fn affine(&mut self) -> Result<LinExpr> {
        let mut acc = LinExpr::c(0);
        let mut sign = 1i64;
        let mut first = true;
        loop {
            match self.peek() {
                Some(Tok::Sym('-')) => {
                    self.next();
                    sign = -sign;
                    continue;
                }
                Some(Tok::Sym('+')) if !first => {
                    self.next();
                    continue;
                }
                _ => {}
            }
            let term = match self.next() {
                Some(Tok::Int(v)) => {
                    if self.peek() == Some(&Tok::Sym('*')) {
                        self.next();
                        let var = self.expect_ident()?;
                        LinExpr::var(&var) * v
                    } else {
                        LinExpr::c(v)
                    }
                }
                Some(Tok::Ident(name)) => {
                    if self.peek() == Some(&Tok::Sym('*')) {
                        self.next();
                        match self.next() {
                            Some(Tok::Int(v)) => LinExpr::var(&name) * v,
                            other => {
                                return Err(err(
                                    self.line(),
                                    format!("expected integer after `*`, found {other:?}"),
                                ))
                            }
                        }
                    } else {
                        LinExpr::var(&name)
                    }
                }
                other => {
                    return Err(err(
                        self.line(),
                        format!("expected affine term, found {other:?}"),
                    ))
                }
            };
            acc = acc + term * sign;
            sign = 1;
            first = false;
            // Continue only on +/- lookahead.
            match self.peek() {
                Some(Tok::Sym('+')) | Some(Tok::Sym('-')) => continue,
                _ => break,
            }
        }
        Ok(acc)
    }

    /// Full arithmetic expression with precedence (`* /` over `+ -`).
    fn expr(
        &mut self,
        iters: &[String],
        reads: &mut Vec<(String, Vec<LinExpr>)>,
        b: &ProgramBuilder,
    ) -> Result<Expr> {
        let mut lhs = self.term(iters, reads, b)?;
        loop {
            match self.peek() {
                Some(Tok::Sym('+')) => {
                    self.next();
                    let rhs = self.term(iters, reads, b)?;
                    lhs = Expr::add(lhs, rhs);
                }
                Some(Tok::Sym('-')) => {
                    self.next();
                    let rhs = self.term(iters, reads, b)?;
                    lhs = Expr::sub(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(
        &mut self,
        iters: &[String],
        reads: &mut Vec<(String, Vec<LinExpr>)>,
        b: &ProgramBuilder,
    ) -> Result<Expr> {
        let mut lhs = self.factor(iters, reads, b)?;
        loop {
            match self.peek() {
                Some(Tok::Sym('*')) => {
                    self.next();
                    let rhs = self.factor(iters, reads, b)?;
                    lhs = Expr::mul(lhs, rhs);
                }
                Some(Tok::Sym('/')) => {
                    self.next();
                    let rhs = self.factor(iters, reads, b)?;
                    lhs = Expr::div(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(
        &mut self,
        iters: &[String],
        reads: &mut Vec<(String, Vec<LinExpr>)>,
        b: &ProgramBuilder,
    ) -> Result<Expr> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Const(v)),
            Some(Tok::Sym('-')) => {
                let inner = self.factor(iters, reads, b)?;
                Ok(Expr::sub(Expr::Const(0), inner))
            }
            Some(Tok::Sym('(')) => {
                let inner = self.expr(iters, reads, b)?;
                self.expect_sym(')')?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "abs" => {
                    self.expect_sym('(')?;
                    let inner = self.expr(iters, reads, b)?;
                    self.expect_sym(')')?;
                    Ok(Expr::abs(inner))
                }
                "min" | "max" => {
                    self.expect_sym('(')?;
                    let a = self.expr(iters, reads, b)?;
                    self.expect_sym(',')?;
                    let c = self.expr(iters, reads, b)?;
                    self.expect_sym(')')?;
                    Ok(if name == "min" {
                        Expr::min(a, c)
                    } else {
                        Expr::max(a, c)
                    })
                }
                _ => {
                    if self.peek() == Some(&Tok::Sym('[')) {
                        // Array read.
                        let mut subs = Vec::new();
                        while self.peek() == Some(&Tok::Sym('[')) {
                            self.next();
                            subs.push(self.affine()?);
                            self.expect_sym(']')?;
                        }
                        let k = reads.len();
                        reads.push((name, subs));
                        Ok(Expr::Read(k))
                    } else if let Some(k) = iters.iter().position(|x| *x == name) {
                        Ok(Expr::Iter(k))
                    } else if let Some(k) = b.param_index(&name) {
                        Ok(Expr::Param(k))
                    } else {
                        Err(err(
                            self.line(),
                            format!("unknown name `{name}` in expression"),
                        ))
                    }
                }
            },
            other => Err(err(
                self.line(),
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{exec_program, ArrayStore};

    const ME_SRC: &str = r#"
# MPEG-4 motion estimation (paper Fig. 2)
program me(Ni, Nj, W)
array Cur[Ni + W][Nj + W]
array Ref[Ni + W][Nj + W]
array Sad[Ni][Nj]

S1: for i = 0 .. Ni - 1, j = 0 .. Nj - 1, k = 0 .. W - 1, l = 0 .. W - 1 {
  Sad[i][j] = Sad[i][j] + abs(Cur[i + k][j + l] - Ref[i + k][j + l])
}
"#;

    #[test]
    fn parses_the_me_kernel() {
        let p = parse_program(ME_SRC).unwrap();
        assert_eq!(p.name, "me");
        assert_eq!(p.params, vec!["Ni", "Nj", "W"]);
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.stmts.len(), 1);
        let s = &p.stmts[0];
        assert_eq!(s.depth(), 4);
        assert_eq!(s.reads.len(), 3);
        // (i, j) = (1, 2), (k, l) = (0, 1): Cur read at (1, 3).
        assert_eq!(
            s.reads[1].map.apply(&[1, 2, 0, 1], &[4, 4, 2]).unwrap(),
            vec![1, 3]
        );
    }

    #[test]
    fn parsed_program_matches_builder_twin() {
        // The parsed ME must execute identically to the hand-built one.
        let parsed = parse_program(ME_SRC).unwrap();
        let params = [5i64, 4, 3];
        let mut st1 = ArrayStore::for_program(&parsed, &params).unwrap();
        st1.fill_with("Cur", |ix| ix[0] * 3 + ix[1]).unwrap();
        st1.fill_with("Ref", |ix| ix[0] + ix[1] * 2).unwrap();
        exec_program(&parsed, &params, &mut st1).unwrap();
        // Hand-computed check of one element.
        let mut expect = 0i64;
        for k in 0..3i64 {
            for l in 0..3i64 {
                let cur = (1 + k) * 3 + (2 + l);
                let rf = (1 + k) + (2 + l) * 2;
                expect += (cur - rf).abs();
            }
        }
        assert_eq!(st1.get("Sad", &[1, 2]).unwrap(), expect);
    }

    #[test]
    fn affine_expressions_support_coefficients() {
        let src = r#"
program p(N)
array A[3*N + 2]
array B[N]
S: for i = 0 .. N - 1 {
  B[i] = A[2*i + 1]
}
"#;
        let p = parse_program(src).unwrap();
        let s = &p.stmts[0];
        assert_eq!(s.reads[0].map.apply(&[4], &[10]).unwrap(), vec![9]);
        assert_eq!(p.arrays[0].eval_extents(&p.params, &[5]).unwrap(), vec![17]);
    }

    #[test]
    fn expression_precedence_and_builtins() {
        let src = r#"
program p(N)
array A[N]
array B[N]
S: for i = 0 .. N - 1 {
  B[i] = min(A[i] * 2 + 1, max(A[i], 3)) - (A[i] / 2)
}
"#;
        let p = parse_program(src).unwrap();
        let mut st = ArrayStore::for_program(&p, &[3]).unwrap();
        st.fill_with("A", |ix| ix[0] + 4).unwrap(); // A = [4,5,6]
        exec_program(&p, &[3], &mut st).unwrap();
        // i=0: min(9, 4)=4 - 2 = 2; i=1: min(11,5)=5-2=3; i=2: min(13,6)=6-3=3.
        assert_eq!(st.data("B").unwrap(), &[2, 3, 3]);
    }

    #[test]
    fn iterators_and_params_in_bodies() {
        let src = r#"
program p(N)
array A[N][4]
S: for i = 0 .. N - 1 {
  A[i][0] = i * N + 7
}
"#;
        let p = parse_program(src).unwrap();
        let mut st = ArrayStore::for_program(&p, &[3]).unwrap();
        exec_program(&p, &[3], &mut st).unwrap();
        assert_eq!(st.get("A", &[2, 0]).unwrap(), 13);
    }

    #[test]
    fn multiple_statements_share_loops_by_name() {
        let src = r#"
program two(N)
array A[N]
array B[N][N]
S1: for i = 0 .. N - 1 {
  A[i] = i + 100
}
S2: for i = 0 .. N - 1, k = 0 .. N - 1 {
  B[i][k] = A[i]
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert_eq!(p.common_depth(0, 1), 1);
        let mut st = ArrayStore::for_program(&p, &[3]).unwrap();
        exec_program(&p, &[3], &mut st).unwrap();
        assert_eq!(st.get("B", &[2, 1]).unwrap(), 102);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let src = "program p(N)\narray A[N]\nS: for i = 0 .. N - 1 {\n  A[i] = $\n}\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.to_string().contains("line 4"), "{e}");
        let e = parse_program("nonsense").unwrap_err();
        assert!(e.to_string().contains("parse error"), "{e}");
        let e = parse_program("program p(N)\narray A\n").unwrap_err();
        assert!(e.to_string().contains("extent"), "{e}");
    }
}
