//! A dependency-free property-testing shim with a `proptest`-compatible
//! surface.
//!
//! The build environment for this workspace has no reachable crates.io
//! mirror, so the workspace maps its `proptest` dependency to this path
//! crate (see the root `Cargo.toml` and `CHANGES.md`). It implements
//! exactly the subset of the real crate's API that the test suite uses:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * integer / float range strategies (`-5i64..5`, `-3i64..=3`, `1.0..2.0`),
//!   tuples of strategies, and `prop::collection::vec`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//!
//! Semantics: each test draws `ProptestConfig::cases` inputs from a
//! deterministic per-test PRNG and panics with the offending inputs on
//! the first counterexample. There is no shrinking — counterexamples are
//! reported as drawn.

pub mod test_runner {
    /// Deterministic splitmix64 generator; each `proptest!` test gets
    /// its own stream seeded from the test's source position.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A failed (or rejected) test case, carrying the rendered reason.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(format!("rejected: {}", msg.into()))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values. Unlike real proptest there is no
    /// value tree / shrinking; a strategy just samples.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let off = (rng.next_u64() as i128).rem_euclid(hi - lo + 1);
                    (lo + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (0 S0)
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*; prop::collection::vec(..)` — the whole
/// API re-exported under one name, as in the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::new(
                0xC0FF_EE00 ^ ((line!() as u64) << 32) ^ (column!() as u64),
            );
            for case in 0..config.cases {
                let values = ($($crate::strategy::Strategy::sample(&($strat), &mut rng),)+);
                let ($($arg,)+) = ::core::clone::Clone::clone(&values);
                let case_fn = move || {
                    $body
                    ::core::result::Result::Ok(())
                };
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    case_fn();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {:?}",
                        case + 1,
                        config.cases,
                        e,
                        values
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let x = Strategy::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&x));
            let y = Strategy::sample(&(-3i64..=3), &mut rng);
            assert!((-3..=3).contains(&y));
            let f = Strategy::sample(&(64.0f64..4096.0), &mut rng);
            assert!((64.0..4096.0).contains(&f));
            let v = Strategy::sample(&prop::collection::vec((0i64..4, 1u64..9), 1..5), &mut rng);
            assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(a in 0i64..10, b in 0i64..10) {
            prop_assert!(a + b >= a, "{} + {} shrank", a, b);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in 1u64..128) {
            prop_assume!(x > 0);
            prop_assert!(x < 128);
        }
    }
}
