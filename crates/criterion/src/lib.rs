//! A dependency-free benchmarking shim with a `criterion`-compatible
//! surface.
//!
//! The build environment for this workspace has no reachable crates.io
//! mirror, so the workspace maps its `criterion` dependency to this
//! path crate (see the root `Cargo.toml` and `CHANGES.md`). It covers
//! the subset of the real API the `polymem-bench` benches use:
//! `Criterion`, `benchmark_group` / `sample_size` / `bench_function` /
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: one untimed warm-up iteration, then
//! `sample_size` timed iterations; the mean, min, and max per-iteration
//! wall-clock times are printed to stdout. No statistics, plots, or
//! baselines — enough to compare orders of magnitude offline.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    default_sample_size: Option<usize>,
}

impl Criterion {
    /// Accepted for macro compatibility; there are no CLI options.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.default_sample_size = Some(n);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size.unwrap_or(20),
            _criterion: self,
        };
        println!("benchmark group `{}`:", group.name);
        group
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(id, self.default_sample_size.unwrap_or(20), f);
        self
    }

    pub fn final_summary(self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warm-up, untimed
    let (mut total, mut min, mut max) = (Duration::ZERO, Duration::MAX, Duration::ZERO);
    for _ in 0..sample_size {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        total += b.elapsed;
        min = min.min(b.elapsed);
        max = max.max(b.elapsed);
    }
    println!(
        "  {id}: mean {:?}  min {:?}  max {:?}  ({sample_size} samples)",
        total / (sample_size as u32),
        min,
        max
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }
}
