//! Content-addressed memoization and instrumentation for the
//! polyhedral core.
//!
//! The scratchpad pipeline projects the *same* polyhedra again and
//! again: every reference in a partition group projects its data space,
//! `bounds::dim_bounds` re-eliminates the same dims once per dimension,
//! and `codegen::scan` repeats those projections per scanned piece. The
//! [`PolyCache`] here memoizes `eliminate_dims` results globally, keyed
//! by the *content* of the input (normalized constraint rows + space
//! names + the eliminated dim set) — content addressing makes a single
//! process-wide cache safe across programs, blocks, and threads, and is
//! what lets `smem::dataspace`, `smem::movement`, `bounds`, and
//! `codegen::scan` share hits without any plumbing.
//!
//! Emptiness queries are memoized the same way ([`empty_memo`]): the
//! verdict depends only on the constraint rows, and polyhedral
//! difference / redundancy probes re-ask about identical systems
//! constantly.
//!
//! The module also owns the polyhedral-core counters (cache hits and
//! misses, Fourier–Motzkin rows generated and pruned, total wall-clock
//! spent inside the core's entry points) surfaced through the
//! executor's pass profiler and the `polycore` bench, and the
//! **naive-mode** toggle that reverts the core to its pre-optimization
//! behaviour (fixed reverse elimination order, no pruning, FM-based
//! emptiness, cache off) so speedups can be measured in-process.

use crate::constraint::Constraint;
use crate::set::Polyhedron;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Instant;

/// Entry cap; the cache is cleared wholesale when it fills (content
/// addressing makes that safe — only warm-up cost is lost).
const CACHE_CAPACITY: usize = 8192;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static FM_ROWS_GENERATED: AtomicU64 = AtomicU64::new(0);
static FM_ROWS_PRUNED: AtomicU64 = AtomicU64::new(0);
static CORE_NS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Nesting depth of timed core entry points on this thread; only
    /// the outermost frame accumulates, so nested calls (projection
    /// inside a bound cascade inside an enumeration) are counted once.
    static TIMER_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard timing one polyhedral-core entry point. Place at the top
/// of every public operation whose cost should count toward
/// [`PolyCoreStats::core_ns`].
pub(crate) struct CoreTimer {
    start: Option<Instant>,
}

impl CoreTimer {
    pub(crate) fn enter() -> CoreTimer {
        let outermost = TIMER_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v == 0
        });
        CoreTimer {
            start: outermost.then(Instant::now),
        }
    }
}

impl Drop for CoreTimer {
    fn drop(&mut self) {
        TIMER_DEPTH.with(|d| d.set(d.get() - 1));
        if let Some(t0) = self.start {
            CORE_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// Tri-state: 0 = fast, 1 = naive, 2 = unset (consult the env once).
static NAIVE: AtomicU8 = AtomicU8::new(2);

/// Snapshot of the polyhedral-core counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolyCoreStats {
    /// Projection-cache hits.
    pub cache_hits: u64,
    /// Projection-cache misses (computations performed and inserted).
    pub cache_misses: u64,
    /// Constraint rows produced by Fourier–Motzkin pairing.
    pub fm_rows_generated: u64,
    /// Rows discarded by interleaved syntactic + bounded exact pruning.
    pub fm_rows_pruned: u64,
    /// Wall-clock nanoseconds spent inside the core's entry points
    /// (projection, emptiness, bounds, enumeration, difference) since
    /// the last reset. Nested calls are counted once.
    pub core_ns: u64,
}

impl PolyCoreStats {
    /// Cache hit rate in `[0, 1]`; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// [`core_ns`](Self::core_ns) in milliseconds.
    pub fn core_ms(&self) -> f64 {
        self.core_ns as f64 / 1e6
    }
}

/// Read the counters.
pub fn poly_core_stats() -> PolyCoreStats {
    PolyCoreStats {
        cache_hits: HITS.load(Ordering::Relaxed),
        cache_misses: MISSES.load(Ordering::Relaxed),
        fm_rows_generated: FM_ROWS_GENERATED.load(Ordering::Relaxed),
        fm_rows_pruned: FM_ROWS_PRUNED.load(Ordering::Relaxed),
        core_ns: CORE_NS.load(Ordering::Relaxed),
    }
}

/// Zero the counters and drop all cached projections (used between
/// bench phases so fast/naive runs are measured from a cold start).
pub fn poly_core_reset() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    FM_ROWS_GENERATED.store(0, Ordering::Relaxed);
    FM_ROWS_PRUNED.store(0, Ordering::Relaxed);
    CORE_NS.store(0, Ordering::Relaxed);
    if let Ok(mut map) = cache().write() {
        map.clear();
    }
    if let Ok(mut map) = empty_cache().write() {
        map.clear();
    }
}

pub(crate) fn count_fm_generated(n: usize) {
    FM_ROWS_GENERATED.fetch_add(n as u64, Ordering::Relaxed);
}

pub(crate) fn count_fm_pruned(n: usize) {
    FM_ROWS_PRUNED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Force the core into (or out of) naive pre-optimization mode.
pub fn set_naive_mode(on: bool) {
    NAIVE.store(on as u8, Ordering::SeqCst);
}

/// Whether the core is in naive mode. Unset state reads the
/// `POLYMEM_POLY_NAIVE` environment variable (value `1`) once.
pub fn naive_mode() -> bool {
    match NAIVE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = std::env::var("POLYMEM_POLY_NAIVE").is_ok_and(|v| v == "1");
            NAIVE.store(on as u8, Ordering::SeqCst);
            on
        }
    }
}

/// Whether every simplex emptiness verdict should be cross-checked
/// against the Fourier–Motzkin oracle (`POLYMEM_POLY_CHECK=1`);
/// disagreement panics. Used by the CI smoke run of the bench.
pub fn cross_check() -> bool {
    static CHECK: OnceLock<bool> = OnceLock::new();
    *CHECK.get_or_init(|| std::env::var("POLYMEM_POLY_CHECK").is_ok_and(|v| v == "1"))
}

/// Cache key: full content of an `eliminate_dims` request. Space names
/// participate because the result carries them.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ProjectKey {
    dims: Vec<String>,
    params: Vec<String>,
    rows: Vec<(u8, Vec<i64>)>,
    eliminated: Vec<usize>,
}

fn cache() -> &'static RwLock<HashMap<ProjectKey, Polyhedron>> {
    static CACHE: OnceLock<RwLock<HashMap<ProjectKey, Polyhedron>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

fn make_key(poly: &Polyhedron, eliminated: &[usize]) -> ProjectKey {
    ProjectKey {
        dims: poly.space().dims().to_vec(),
        params: poly.space().params().to_vec(),
        rows: poly
            .constraints()
            .iter()
            .map(|c: &Constraint| (c.kind as u8, c.coeffs.0.clone()))
            .collect(),
        eliminated: eliminated.to_vec(),
    }
}

/// Memoized projection: look up `poly.eliminate_dims(dims)` by content,
/// computing via `compute` on a miss. `dims` must already be sorted and
/// deduplicated. Disabled entirely in naive mode.
pub(crate) fn project_memo(
    poly: &Polyhedron,
    dims: &[usize],
    compute: impl FnOnce() -> crate::Result<Polyhedron>,
) -> crate::Result<Polyhedron> {
    if naive_mode() {
        return compute();
    }
    let key = make_key(poly, dims);
    if let Ok(map) = cache().read() {
        if let Some(hit) = map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let result = compute()?;
    if let Ok(mut map) = cache().write() {
        if map.len() >= CACHE_CAPACITY {
            map.clear();
        }
        map.insert(key, result.clone());
    }
    Ok(result)
}

type RowsKey = Vec<(u8, Vec<i64>)>;

fn empty_cache() -> &'static RwLock<HashMap<RowsKey, bool>> {
    static CACHE: OnceLock<RwLock<HashMap<RowsKey, bool>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

fn rows_key(rows: &[Constraint]) -> RowsKey {
    rows.iter()
        .map(|c| (c.kind as u8, c.coeffs.0.clone()))
        .collect()
}

/// Memoized emptiness: the verdict depends only on the constraint rows
/// (spaces and names are irrelevant), so one process-wide map answers
/// repeat queries from `diff`, `remove_redundant` probes, and the
/// passes. Disabled in naive mode. Hits/misses share the cache
/// counters with [`project_memo`].
pub(crate) fn empty_memo(
    rows: &[Constraint],
    compute: impl FnOnce() -> crate::Result<bool>,
) -> crate::Result<bool> {
    if naive_mode() {
        return compute();
    }
    let key = rows_key(rows);
    if let Ok(map) = empty_cache().read() {
        if let Some(&hit) = map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let result = compute()?;
    if let Ok(mut map) = empty_cache().write() {
        if map.len() >= CACHE_CAPACITY {
            map.clear();
        }
        map.insert(key, result);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;

    fn tri() -> Polyhedron {
        Polyhedron::new(
            Space::new(["i", "j"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, 0, 0]),
                Constraint::ineq(vec![-1, 0, 1, -1]),
                Constraint::ineq(vec![0, 1, 0, 0]),
                Constraint::ineq(vec![1, -1, 0, 0]),
            ],
        )
    }

    #[test]
    fn repeat_projections_hit_the_cache() {
        poly_core_reset();
        set_naive_mode(false);
        let t = tri();
        let a = t.eliminate_dims(&[1]).unwrap();
        let before = poly_core_stats();
        let b = t.eliminate_dims(&[1]).unwrap();
        let after = poly_core_stats();
        assert_eq!(a, b);
        assert!(
            after.cache_hits > before.cache_hits,
            "second identical projection should hit: {after:?}"
        );
    }

    #[test]
    fn naive_mode_bypasses_the_cache_and_matches() {
        poly_core_reset();
        let t = tri();
        set_naive_mode(false);
        let fast = t.eliminate_dims(&[0, 1]).unwrap();
        set_naive_mode(true);
        let stats_before = poly_core_stats();
        let naive = t.eliminate_dims(&[0, 1]).unwrap();
        let stats_after = poly_core_stats();
        set_naive_mode(false);
        assert_eq!(
            stats_before.cache_hits + stats_before.cache_misses,
            stats_after.cache_hits + stats_after.cache_misses,
            "naive mode must not touch the cache"
        );
        // Same set either way (possibly different row order/count).
        for n in [1i64, 3, 6] {
            assert_eq!(fast.contains(&[], &[n]), naive.contains(&[], &[n]), "N={n}");
        }
    }

    #[test]
    fn stats_hit_rate() {
        let s = PolyCoreStats {
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PolyCoreStats::default().hit_rate(), 0.0);
    }
}
