//! Rational feasibility via phase-1 simplex with integer pivoting.
//!
//! [`Polyhedron::is_empty`](crate::Polyhedron::is_empty) used to decide
//! feasibility by Fourier–Motzkin-eliminating *every* dimension and
//! parameter — exponential in the worst case and the dominant cost of
//! `remove_redundant` and polyhedral difference. This module answers
//! the same question ("does a rational point satisfy the system?") with
//! the textbook phase-1 simplex method, with Bland's rule for
//! guaranteed termination.
//!
//! Arithmetic is **exact integer pivoting** (the scheme used by `lrs`):
//! the tableau holds `i128` integers that are all implicitly divided by
//! one positive common denominator `det` (the current basis
//! determinant). A pivot on element `p` updates every other entry as
//! `(p·a[i][j] − a[i][s]·a[r][j]) / det` — an exact division, since the
//! entries are subdeterminants of the input — and sets `det = p`. This
//! avoids the per-operation gcd reduction a `Rat` tableau would pay,
//! which profiling showed dominating on the small systems the
//! scratchpad pipeline produces.
//!
//! Construction: free variables are split `x = u − w` with `u, w ≥ 0`;
//! every constraint becomes an equality with sign-normalised
//! non-negative right-hand side, using a slack for inequalities and an
//! artificial variable wherever the slack cannot seed the basis. The
//! system is feasible iff min Σ artificials = 0.
//!
//! ## Relation to the FM oracle
//!
//! Feasibility here is over the *rationals*. The FM path
//! (`rows_empty_fm`) integer-tightens constants (`normalize`'s
//! gcd-floor division) after every elimination, so it can prove
//! *integer* emptiness of systems that still have rational points. The
//! sound invariant cross-checked under `POLYMEM_POLY_CHECK=1` is
//! therefore one-directional: simplex-empty ⇒ FM-empty. The converse
//! direction (FM empty, simplex feasible) is legitimate tightening, and
//! errs on the safe side for data movement: a few extra elements may be
//! copied, never too few.

use crate::constraint::{Constraint, ConstraintKind};
use polymem_linalg::{LinalgError, Result};

/// Hard cap on pivots; Bland's rule terminates without it, but a cap
/// turns any surprise into a clean "fall back to FM" signal.
const MAX_PIVOTS: usize = 20_000;

fn mul(a: i128, b: i128) -> Result<i128> {
    a.checked_mul(b).ok_or(LinalgError::Overflow)
}

/// Exact-division pivot update: `(p·a − c·r) / det`. The division is
/// exact by the subdeterminant structure of integer pivoting; a nonzero
/// remainder would mean corrupted state, reported as `Overflow` so the
/// caller falls back to the FM path.
fn pivot_entry(p: i128, a: i128, c: i128, r: i128, det: i128) -> Result<i128> {
    let num = mul(p, a)?
        .checked_sub(mul(c, r)?)
        .ok_or(LinalgError::Overflow)?;
    if num % det != 0 {
        return Err(LinalgError::Overflow);
    }
    Ok(num / det)
}

/// Rational feasibility of a constraint system over `n_vars` free
/// variables (rows have `n_vars + 1` columns, constant last). Returns
/// `Ok(true)` iff some rational assignment satisfies every row.
/// Errors (`Overflow`) mean "undecided — use the FM path".
pub fn feasible(rows: &[Constraint], n_vars: usize) -> Result<bool> {
    // Constant-only rows (and n_vars == 0 systems) resolve directly.
    let mut live: Vec<&Constraint> = Vec::with_capacity(rows.len());
    for c in rows {
        match c.constant_verdict() {
            Some(true) => continue,
            Some(false) => return Ok(false),
            None => live.push(c),
        }
    }
    if live.is_empty() {
        return Ok(true);
    }

    let m = live.len();
    let n_slack = live
        .iter()
        .filter(|c| c.kind == ConstraintKind::Ineq)
        .count();
    // Columns: u (n), w (n), slacks, then artificials (appended as
    // needed), then the right-hand side as the final column. `n_cols`
    // counts the non-artificial structural columns.
    let n_cols = 2 * n_vars + n_slack;
    let mut tab: Vec<Vec<i128>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let mut n_art = 0usize;
    let mut slack_idx = 0usize;

    for c in &live {
        // c·x + k {>=,=} 0  ⇔  c·x {>=,=} β with β = -k.
        let beta = -(c.constant() as i128);
        let mut row: Vec<i128> = vec![0; n_cols + 1];
        // Sign-normalise so the RHS is non-negative.
        let flip = beta < 0;
        let sgn: i128 = if flip { -1 } else { 1 };
        for j in 0..n_vars {
            let a = sgn * (c.coeff(j) as i128);
            row[j] = a;
            row[n_vars + j] = -a;
        }
        row[n_cols] = sgn * beta;
        let needs_artificial = match c.kind {
            ConstraintKind::Ineq => {
                // c·x − s = β; after a flip the slack coefficient is +1
                // and seeds the basis, otherwise an artificial must.
                let s_col = 2 * n_vars + slack_idx;
                slack_idx += 1;
                row[s_col] = if flip { 1 } else { -1 };
                if flip {
                    basis.push(s_col);
                    false
                } else {
                    true
                }
            }
            ConstraintKind::Eq => true,
        };
        if needs_artificial {
            basis.push(n_cols + n_art);
            n_art += 1;
        }
        tab.push(row);
    }
    if n_art == 0 {
        // Every row seeded its own slack: the origin is feasible.
        return Ok(true);
    }
    // Splice in the artificial identity columns (before the RHS).
    let total_cols = n_cols + n_art;
    let mut next_art = 0usize;
    for (i, row) in tab.iter_mut().enumerate() {
        let rhs = row[n_cols];
        row.truncate(n_cols);
        row.extend(std::iter::repeat_n(0, n_art));
        row.push(rhs);
        if basis[i] >= n_cols {
            row[n_cols + next_art] = 1;
            next_art += 1;
        }
    }

    // Phase-1 objective row: z = Σ artificial values; reduced cost of
    // column j is the sum of the artificial-basic rows' entries. The
    // objective's RHS slot carries z (scaled by det like everything).
    let mut obj: Vec<i128> = vec![0; total_cols + 1];
    for (i, row) in tab.iter().enumerate() {
        if basis[i] >= n_cols {
            for (slot, &v) in obj.iter_mut().zip(row.iter()) {
                *slot += v;
            }
        }
    }

    // All tableau values are implicitly divided by `det` (> 0 always,
    // so sign tests need no adjustment).
    let mut det: i128 = 1;
    for _ in 0..MAX_PIVOTS {
        // Bland: entering column = smallest non-artificial index with
        // positive reduced cost (artificials never re-enter).
        let Some(enter) = (0..n_cols).find(|&j| obj[j] > 0) else {
            return Ok(obj[total_cols] == 0);
        };
        // Ratio test over rows with a positive pivot column entry;
        // ratios compared by cross-multiplication, Bland tie-break on
        // the smallest basis variable.
        let mut leave: Option<usize> = None;
        for i in 0..m {
            if tab[i][enter] <= 0 {
                continue;
            }
            let better = match leave {
                None => true,
                Some(l) => {
                    // rhs[i]/tab[i][e] vs rhs[l]/tab[l][e]
                    let lhs = mul(tab[i][total_cols], tab[l][enter])?;
                    let rhs = mul(tab[l][total_cols], tab[i][enter])?;
                    lhs < rhs || (lhs == rhs && basis[i] < basis[l])
                }
            };
            if better {
                leave = Some(i);
            }
        }
        let Some(r) = leave else {
            // Unbounded phase-1 objective cannot happen (z ≥ 0 always);
            // reaching here means numerical trouble — fall back.
            return Err(LinalgError::Overflow);
        };
        // Integer pivot on (r, enter): the pivot row is left as-is, the
        // new denominator is the pivot element.
        let p = tab[r][enter];
        debug_assert!(p > 0);
        let piv_row = tab[r].clone();
        for (i, row) in tab.iter_mut().enumerate() {
            if i == r {
                continue;
            }
            let c = row[enter];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = pivot_entry(p, *slot, c, piv_row[j], det)?;
            }
        }
        let c = obj[enter];
        for (j, slot) in obj.iter_mut().enumerate() {
            *slot = pivot_entry(p, *slot, c, piv_row[j], det)?;
        }
        det = p;
        basis[r] = enter;
    }
    Err(LinalgError::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ineq(v: Vec<i64>) -> Constraint {
        Constraint::ineq(v)
    }

    #[test]
    fn trivial_systems() {
        assert!(feasible(&[], 2).unwrap());
        assert!(feasible(&[ineq(vec![0, 0, 5])], 2).unwrap());
        assert!(!feasible(&[ineq(vec![0, 0, -1])], 2).unwrap());
    }

    #[test]
    fn box_is_feasible_contradiction_is_not() {
        // 0 <= x <= 4
        let rows = vec![ineq(vec![1, 0]), ineq(vec![-1, 4])];
        assert!(feasible(&rows, 1).unwrap());
        // x >= 5 and x <= 3
        let rows = vec![ineq(vec![1, -5]), ineq(vec![-1, 3])];
        assert!(!feasible(&rows, 1).unwrap());
    }

    #[test]
    fn rational_point_suffices() {
        // 2x = 1 is rationally feasible (x = 1/2) even though it has no
        // integer solution; the integer gcd test lives upstream.
        let rows = vec![Constraint::eq(vec![2, -1])];
        assert!(feasible(&rows, 1).unwrap());
    }

    #[test]
    fn equalities_combine_with_inequalities() {
        // x + y = 3, x >= 2, y >= 2 → infeasible.
        let rows = vec![
            Constraint::eq(vec![1, 1, -3]),
            ineq(vec![1, 0, -2]),
            ineq(vec![0, 1, -2]),
        ];
        assert!(!feasible(&rows, 2).unwrap());
        // Relax to y >= 1 → feasible.
        let rows = vec![
            Constraint::eq(vec![1, 1, -3]),
            ineq(vec![1, 0, -2]),
            ineq(vec![0, 1, -1]),
        ];
        assert!(feasible(&rows, 2).unwrap());
    }

    #[test]
    fn negative_orthant_needs_no_artificials() {
        // x <= -3, y <= -4: β < 0 rows seed their own slack basis.
        let rows = vec![ineq(vec![-1, 0, -3]), ineq(vec![0, -1, -4])];
        assert!(feasible(&rows, 2).unwrap());
    }

    #[test]
    fn degenerate_equality_chain() {
        // x = y, y = z, z = x, x >= 7 — feasible ray.
        let rows = vec![
            Constraint::eq(vec![1, -1, 0, 0]),
            Constraint::eq(vec![0, 1, -1, 0]),
            Constraint::eq(vec![-1, 0, 1, 0]),
            ineq(vec![1, 0, 0, -7]),
        ];
        assert!(feasible(&rows, 3).unwrap());
        // Add z <= 5 → infeasible.
        let mut rows = rows;
        rows.push(ineq(vec![0, 0, -1, 5]));
        assert!(!feasible(&rows, 3).unwrap());
    }

    #[test]
    fn mixed_coefficients_stress_integer_pivoting() {
        // A slightly denser system exercising repeated pivots with a
        // non-unit denominator: 3x + 5y <= 60, 7x - 2y >= 4,
        // x + y >= 5, y >= 1 → feasible (e.g. x = 4, y = 2).
        let rows = vec![
            ineq(vec![-3, -5, 60]),
            ineq(vec![7, -2, -4]),
            ineq(vec![1, 1, -5]),
            ineq(vec![0, 1, -1]),
        ];
        assert!(feasible(&rows, 2).unwrap());
        // Tighten to 3x + 5y <= 10 with x + y >= 5, 7x - 2y >= 4:
        // feasibility would need x >= (4+2y)/7 and 3x+5y <= 10 and
        // x >= 5-y → 3(5-y)+5y <= 10 → 15+2y <= 10 → y <= -5/2, but
        // then x >= 5-y >= 7.5 → 3x >= 22.5 > 10 - 5y = 22.5 edge...
        // make it strictly impossible with y >= 1.
        let rows = vec![
            ineq(vec![-3, -5, 10]),
            ineq(vec![7, -2, -4]),
            ineq(vec![1, 1, -5]),
            ineq(vec![0, 1, -1]),
        ];
        assert!(!feasible(&rows, 2).unwrap());
    }
}
