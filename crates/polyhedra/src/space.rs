//! Named spaces: the dimension/parameter layout shared by polyhedra,
//! affine maps and generated code.
//!
//! A [`Space`] fixes the column layout used by every constraint row in
//! this crate: first the set dimensions, then the symbolic parameters,
//! then a trailing constant column — i.e. a row `c` encodes
//! `c[0..n]·x + c[n..n+p]·q + c[n+p] (>= | =) 0`.

use std::fmt;

/// A named space of set dimensions and parameters.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Space {
    dims: Vec<String>,
    params: Vec<String>,
}

impl Space {
    /// Build a space from dimension and parameter names.
    pub fn new<D: Into<String>, P: Into<String>>(
        dims: impl IntoIterator<Item = D>,
        params: impl IntoIterator<Item = P>,
    ) -> Space {
        Space {
            dims: dims.into_iter().map(Into::into).collect(),
            params: params.into_iter().map(Into::into).collect(),
        }
    }

    /// An anonymous space with `n` dims (`d0..`) and `p` params (`p0..`).
    pub fn anon(n: usize, p: usize) -> Space {
        Space {
            dims: (0..n).map(|i| format!("d{i}")).collect(),
            params: (0..p).map(|i| format!("p{i}")).collect(),
        }
    }

    /// Number of set dimensions.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of symbolic parameters.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Total number of columns of a constraint row in this space
    /// (dims + params + constant).
    pub fn n_cols(&self) -> usize {
        self.dims.len() + self.params.len() + 1
    }

    /// Dimension names.
    pub fn dims(&self) -> &[String] {
        &self.dims
    }

    /// Parameter names.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Name of dimension `i`.
    pub fn dim_name(&self, i: usize) -> &str {
        &self.dims[i]
    }

    /// Name of parameter `i`.
    pub fn param_name(&self, i: usize) -> &str {
        &self.params[i]
    }

    /// Column index of dimension `i`.
    pub fn dim_col(&self, i: usize) -> usize {
        debug_assert!(i < self.dims.len());
        i
    }

    /// Column index of parameter `i`.
    pub fn param_col(&self, i: usize) -> usize {
        debug_assert!(i < self.params.len());
        self.dims.len() + i
    }

    /// Column index of the constant term.
    pub fn const_col(&self) -> usize {
        self.dims.len() + self.params.len()
    }

    /// Index of a dimension by name.
    pub fn find_dim(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d == name)
    }

    /// Index of a parameter by name.
    pub fn find_param(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p == name)
    }

    /// A new space with the given dims removed (params preserved).
    pub fn drop_dims(&self, remove: &[usize]) -> Space {
        Space {
            dims: self
                .dims
                .iter()
                .enumerate()
                .filter(|(i, _)| !remove.contains(i))
                .map(|(_, d)| d.clone())
                .collect(),
            params: self.params.clone(),
        }
    }

    /// A new space keeping only the listed dims, in the listed order.
    pub fn keep_dims(&self, keep: &[usize]) -> Space {
        Space {
            dims: keep.iter().map(|&i| self.dims[i].clone()).collect(),
            params: self.params.clone(),
        }
    }

    /// Concatenate the dims of two spaces that share parameters:
    /// `[self.dims, other.dims]`. Panics if parameters differ.
    pub fn product(&self, other: &Space) -> Space {
        assert_eq!(
            self.params, other.params,
            "Space::product requires identical parameters"
        );
        let mut dims = self.dims.clone();
        dims.extend(other.dims.iter().cloned());
        Space {
            dims,
            params: self.params.clone(),
        }
    }

    /// True iff the two spaces have the same shape (names ignored).
    pub fn same_shape(&self, other: &Space) -> bool {
        self.n_dims() == other.n_dims() && self.n_params() == other.n_params()
    }

    /// A space with a prefix attached to every dim name (used when
    /// building product spaces for dependence analysis).
    pub fn with_dim_prefix(&self, prefix: &str) -> Space {
        Space {
            dims: self.dims.iter().map(|d| format!("{prefix}{d}")).collect(),
            params: self.params.clone(),
        }
    }
}

impl fmt::Debug for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] -> {{ [{}] }}",
            self.params.join(", "),
            self.dims.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout() {
        let s = Space::new(["i", "j"], ["N"]);
        assert_eq!(s.n_dims(), 2);
        assert_eq!(s.n_params(), 1);
        assert_eq!(s.n_cols(), 4);
        assert_eq!(s.dim_col(1), 1);
        assert_eq!(s.param_col(0), 2);
        assert_eq!(s.const_col(), 3);
        assert_eq!(s.find_dim("j"), Some(1));
        assert_eq!(s.find_dim("k"), None);
        assert_eq!(s.find_param("N"), Some(0));
    }

    #[test]
    fn drop_and_keep() {
        let s = Space::new(["i", "j", "k"], ["N"]);
        let d = s.drop_dims(&[1]);
        assert_eq!(d.dims(), &["i".to_string(), "k".to_string()]);
        let k = s.keep_dims(&[2, 0]);
        assert_eq!(k.dims(), &["k".to_string(), "i".to_string()]);
        assert_eq!(k.n_params(), 1);
    }

    #[test]
    fn product_and_prefix() {
        let a = Space::new(["i"], ["N"]);
        let b = Space::new(["j"], ["N"]);
        let p = a.product(&b);
        assert_eq!(p.dims(), &["i".to_string(), "j".to_string()]);
        let pre = a.with_dim_prefix("s_");
        assert_eq!(pre.dims(), &["s_i".to_string()]);
    }

    #[test]
    fn anon_space() {
        let s = Space::anon(2, 1);
        assert_eq!(s.dims(), &["d0".to_string(), "d1".to_string()]);
        assert_eq!(s.params(), &["p0".to_string()]);
        assert!(s.same_shape(&Space::new(["x", "y"], ["M"])));
    }
}
