//! Dependence polyhedra.
//!
//! A dependence from statement instance `s(is)` to `t(it)` exists when
//! both are valid points of their iteration polytopes, they touch the
//! same array element, and `is` executes before `it` (Section 2 of the
//! paper). All three conditions are affine here, so each dependence is
//! a polyhedron over the product space `[src dims, dst dims]`.
//!
//! Execution order is encoded the classic way, split by *dependence
//! level*: for each common loop depth `l`, one polyhedron with
//! `is[0..l] = it[0..l]` and `is[l] < it[l]`; plus, when the source
//! statement precedes the target textually inside the innermost common
//! loop, one polyhedron with all common dims equal.
//!
//! Downstream users: tiling legality reads per-loop [`DirSign`]s;
//! the §3.1.4 copy-in/copy-out optimisation restricts the source or
//! target side to a block and projects.

use crate::constraint::Constraint;
use crate::map::AffineMap;
use crate::set::Polyhedron;
use crate::{PolyError, Result};

/// Classification of a data dependence by access kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DepKind {
    /// Write → read (true/flow dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
    /// Read → read (not a real dependence; tracked for reuse analysis).
    Input,
}

/// Sign of `it[l] - is[l]` over a dependence polyhedron.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirSign {
    /// Always negative (`<`): the loop carries the dependence backwards.
    Neg,
    /// Always zero (`=`): dependence independent of the loop.
    Zero,
    /// Always positive (`>`): forward-carried.
    Pos,
    /// Mixed signs (`*`).
    Star,
    /// The dependence polyhedron is empty.
    Empty,
}

impl DirSign {
    /// True iff the component is non-negative (`0` or `+` or empty):
    /// the condition each loop of a permutable band must satisfy for
    /// every dependence.
    pub fn is_non_negative(&self) -> bool {
        matches!(self, DirSign::Zero | DirSign::Pos | DirSign::Empty)
    }
}

/// One dependence between two statement instances.
#[derive(Clone, Debug)]
pub struct Dependence {
    /// Access-kind classification.
    pub kind: DepKind,
    /// Index of the source statement (caller-defined numbering).
    pub src_stmt: usize,
    /// Index of the target statement.
    pub dst_stmt: usize,
    /// Name of the array inducing the dependence.
    pub array: String,
    /// The dependence polyhedron over `[src dims, dst dims]` + params.
    pub poly: Polyhedron,
    /// Number of source dims (the first `n_src` dims of `poly`).
    pub n_src: usize,
}

impl Dependence {
    /// Project onto the source dims.
    pub fn src_instances(&self) -> Result<Polyhedron> {
        let keep: Vec<usize> = (0..self.n_src).collect();
        self.poly.project_onto(&keep)
    }

    /// Project onto the target dims.
    pub fn dst_instances(&self) -> Result<Polyhedron> {
        let keep: Vec<usize> = (self.n_src..self.poly.n_dims()).collect();
        self.poly.project_onto(&keep)
    }

    /// Restrict the source side to a set over the source space.
    pub fn constrain_src(&self, set: &Polyhedron) -> Result<Dependence> {
        Ok(Dependence {
            poly: constrain_side(&self.poly, set, 0, self.n_src)?,
            ..self.clone()
        })
    }

    /// Restrict the target side to a set over the target space.
    pub fn constrain_dst(&self, set: &Polyhedron) -> Result<Dependence> {
        Ok(Dependence {
            poly: constrain_side(&self.poly, set, self.n_src, self.poly.n_dims() - self.n_src)?,
            ..self.clone()
        })
    }

    /// Direction sign of shared loop `l` (`it[l] - is[l]`), assuming
    /// loop `l` is dim `l` on both sides.
    pub fn direction(&self, l: usize) -> Result<DirSign> {
        let n = self.poly.n_dims();
        let n_dst = n - self.n_src;
        if l >= self.n_src || l >= n_dst {
            return Err(PolyError::BadDim { dim: l, n_dims: n });
        }
        if self.poly.is_empty()? {
            return Ok(DirSign::Empty);
        }
        let ncols = self.poly.space().n_cols();
        let delta = |sign: i64, shift: i64| {
            // sign * (it_l - is_l) + shift >= 0
            let mut row = vec![0i64; ncols];
            row[self.n_src + l] = sign;
            row[l] = -sign;
            row[ncols - 1] = shift;
            Constraint::ineq(row)
        };
        let mut can_neg = self.poly.clone();
        can_neg.add_constraint(delta(-1, -1)); // it - is <= -1
        let mut can_zero = self.poly.clone();
        can_zero.add_constraint(delta(1, 0));
        can_zero.add_constraint(delta(-1, 0)); // it - is == 0
        let mut can_pos = self.poly.clone();
        can_pos.add_constraint(delta(1, -1)); // it - is >= 1
        let neg = !can_neg.is_empty()?;
        let zero = !can_zero.is_empty()?;
        let pos = !can_pos.is_empty()?;
        Ok(match (neg, zero, pos) {
            (true, false, false) => DirSign::Neg,
            (false, true, false) => DirSign::Zero,
            (false, false, true) => DirSign::Pos,
            (false, false, false) => DirSign::Empty,
            _ => DirSign::Star,
        })
    }
}

/// Intersect `poly`'s dims `[offset, offset+width)` with `set`.
fn constrain_side(
    poly: &Polyhedron,
    set: &Polyhedron,
    offset: usize,
    width: usize,
) -> Result<Polyhedron> {
    if set.n_dims() != width || set.n_params() != poly.n_params() {
        return Err(PolyError::SpaceMismatch {
            op: "constrain_side",
        });
    }
    let n = poly.n_dims();
    let ncols = poly.space().n_cols();
    let mut out = poly.clone();
    for c in set.constraints() {
        let mut row = vec![0i64; ncols];
        for j in 0..width {
            row[offset + j] = c.coeff(j);
        }
        for j in 0..(poly.n_params() + 1) {
            row[n + j] = c.coeff(width + j);
        }
        out.add_constraint(Constraint {
            coeffs: row.into(),
            kind: c.kind,
        });
    }
    Ok(out)
}

/// Build the dependence polyhedra between a source and target access.
///
/// * `src_dom`, `dst_dom` — iteration polytopes (shared params);
/// * `f_src`, `f_dst` — access maps into the same array space;
/// * `common` — number of shared outer loops (dims `0..common` on both
///   sides refer to the same loops);
/// * `src_textually_before` — whether the source statement appears
///   before the target inside the innermost common loop (enables the
///   all-equal level); for `src == dst` statement self-dependences pass
///   `false`.
///
/// Returns one [`Dependence`] per non-empty level.
#[allow(clippy::too_many_arguments)]
pub fn dependence_polyhedra(
    kind: DepKind,
    src_stmt: usize,
    dst_stmt: usize,
    array: &str,
    src_dom: &Polyhedron,
    dst_dom: &Polyhedron,
    f_src: &AffineMap,
    f_dst: &AffineMap,
    common: usize,
    src_textually_before: bool,
) -> Result<Vec<Dependence>> {
    if f_src.n_out() != f_dst.n_out() {
        return Err(PolyError::SpaceMismatch {
            op: "dependence_polyhedra",
        });
    }
    let n_src = src_dom.n_dims();
    let n_dst = dst_dom.n_dims();
    let n_params = src_dom.n_params();
    let src_space = src_dom.space().with_dim_prefix("s_");
    let dst_space = dst_dom.space().with_dim_prefix("t_");
    let space = src_space.product(&dst_space);
    let ncols = space.n_cols();

    let mut base_rows: Vec<Constraint> = Vec::new();
    // Both instances valid.
    for c in src_dom.constraints() {
        let mut row = vec![0i64; ncols];
        row[..n_src].copy_from_slice(&c.coeffs[..n_src]);
        for j in 0..(n_params + 1) {
            row[n_src + n_dst + j] = c.coeff(n_src + j);
        }
        base_rows.push(Constraint {
            coeffs: row.into(),
            kind: c.kind,
        });
    }
    for c in dst_dom.constraints() {
        let mut row = vec![0i64; ncols];
        row[n_src..n_src + n_dst].copy_from_slice(&c.coeffs[..n_dst]);
        for j in 0..(n_params + 1) {
            row[n_src + n_dst + j] = c.coeff(n_dst + j);
        }
        base_rows.push(Constraint {
            coeffs: row.into(),
            kind: c.kind,
        });
    }
    // Same array element: F_src(is) = F_dst(it), row per array dim.
    for r in 0..f_src.n_out() {
        let ms = f_src.matrix();
        let mt = f_dst.matrix();
        let mut row = vec![0i64; ncols];
        for j in 0..n_src {
            row[j] = ms[(r, j)];
        }
        for j in 0..n_dst {
            row[n_src + j] -= mt[(r, j)];
        }
        for j in 0..(n_params + 1) {
            row[n_src + n_dst + j] = ms[(r, n_src + j)] - mt[(r, n_dst + j)];
        }
        base_rows.push(Constraint::eq(row));
    }
    let base = Polyhedron::new(space.clone(), base_rows);

    let mut out = Vec::new();
    let mut push_level = |poly: Polyhedron| -> Result<()> {
        if !poly.is_empty()? {
            out.push(Dependence {
                kind,
                src_stmt,
                dst_stmt,
                array: array.to_string(),
                poly,
                n_src,
            });
        }
        Ok(())
    };

    for l in 0..common {
        // is[0..l] = it[0..l], is[l] <= it[l] - 1.
        let mut p = base.clone();
        for j in 0..l {
            let mut row = vec![0i64; ncols];
            row[j] = 1;
            row[n_src + j] = -1;
            p.add_constraint(Constraint::eq(row));
        }
        let mut row = vec![0i64; ncols];
        row[l] = -1;
        row[n_src + l] = 1;
        row[ncols - 1] = -1;
        p.add_constraint(Constraint::ineq(row));
        push_level(p)?;
    }
    if src_textually_before {
        let mut p = base.clone();
        for j in 0..common {
            let mut row = vec![0i64; ncols];
            row[j] = 1;
            row[n_src + j] = -1;
            p.add_constraint(Constraint::eq(row));
        }
        push_level(p)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;

    fn line_domain(n: &str) -> Polyhedron {
        // { i : 1 <= i <= N }
        Polyhedron::new(
            Space::new(["i"], [n]),
            vec![
                Constraint::ineq(vec![1, 0, -1]),
                Constraint::ineq(vec![-1, 1, 0]),
            ],
        )
    }

    fn access(rows: &[&[i64]], dom: &Polyhedron, n_out: usize) -> AffineMap {
        let out = Space::new(
            (0..n_out).map(|i| format!("a{i}")),
            dom.space().params().to_vec(),
        );
        AffineMap::from_rows(dom.space().clone(), out, rows)
    }

    #[test]
    fn stencil_flow_dependence_has_distance_one() {
        // for i: A[i] = A[i-1]  — flow dep from write A[i] at i to read
        // A[i-1] at i+1, carried by the loop with distance +1.
        let dom = line_domain("N");
        let write = access(&[&[1, 0, 0]], &dom, 1); // A[i]
        let read = access(&[&[1, 0, -1]], &dom, 1); // A[i-1]
        let deps = dependence_polyhedra(
            DepKind::Flow,
            0,
            0,
            "A",
            &dom,
            &dom,
            &write,
            &read,
            1,
            false,
        )
        .unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].direction(0).unwrap(), DirSign::Pos);
        // The polyhedron contains (is, it) = (1, 2) but not (2, 2).
        assert!(deps[0].poly.contains(&[1, 2], &[10]));
        assert!(!deps[0].poly.contains(&[2, 2], &[10]));
        assert!(!deps[0].poly.contains(&[2, 4], &[10])); // different element
    }

    #[test]
    fn independent_accesses_have_no_dependence() {
        // A[i] written and A[i + N] read never alias for i in [1, N].
        let dom = line_domain("N");
        let write = access(&[&[1, 0, 0]], &dom, 1);
        let read = access(&[&[1, 1, 0]], &dom, 1);
        let mut deps = dependence_polyhedra(
            DepKind::Flow,
            0,
            0,
            "A",
            &dom,
            &dom,
            &write,
            &read,
            1,
            false,
        )
        .unwrap();
        // Level polyhedra must be empty once N >= 1 context applies;
        // without a context the polyhedron can only be satisfied with
        // N <= 0, which contradicts 1 <= i <= N emptiness... verify:
        deps.retain(|d| !d.poly.is_empty().unwrap());
        assert!(deps.is_empty());
    }

    #[test]
    fn textual_order_gives_loop_independent_level() {
        // S1: A[i] = ...; S2: ... = A[i] in the same loop body.
        let dom = line_domain("N");
        let acc = access(&[&[1, 0, 0]], &dom, 1);
        let deps = dependence_polyhedra(DepKind::Flow, 0, 1, "A", &dom, &dom, &acc, &acc, 1, true)
            .unwrap();
        // One loop-independent level (is = it) plus no carried level
        // (same element requires is = it).
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].direction(0).unwrap(), DirSign::Zero);
    }

    #[test]
    fn mixed_direction_is_star() {
        // Write A[i], read A[N - i]: distance changes sign across the
        // domain midpoint.
        let dom = line_domain("N");
        let write = access(&[&[1, 0, 0]], &dom, 1);
        let read = access(&[&[-1, 1, 0]], &dom, 1);
        let deps = dependence_polyhedra(
            DepKind::Anti,
            0,
            0,
            "A",
            &dom,
            &dom,
            &read,
            &write,
            1,
            false,
        )
        .unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].direction(0).unwrap(), DirSign::Pos); // is < it enforced by level
    }

    #[test]
    fn projections_and_side_constraints() {
        let dom = line_domain("N");
        let write = access(&[&[1, 0, 0]], &dom, 1);
        let read = access(&[&[1, 0, -1]], &dom, 1);
        let dep = dependence_polyhedra(
            DepKind::Flow,
            0,
            0,
            "A",
            &dom,
            &dom,
            &write,
            &read,
            1,
            false,
        )
        .unwrap()
        .remove(0);
        let srcs = dep.src_instances().unwrap();
        // Sources are i in [1, N-1] (i = N writes A[N], read at i = N+1 invalid).
        assert!(srcs.contains(&[1], &[10]));
        assert!(srcs.contains(&[9], &[10]));
        let dsts = dep.dst_instances().unwrap();
        assert!(dsts.contains(&[2], &[10]));
        // Constrain targets to a block it in [5, 6]: sources become [4, 5].
        let block = Polyhedron::new(
            Space::new(["i"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, -5]),
                Constraint::ineq(vec![-1, 0, 6]),
            ],
        );
        let narrowed = dep.constrain_dst(&block).unwrap();
        let srcs = narrowed.src_instances().unwrap();
        assert!(srcs.contains(&[4], &[10]));
        assert!(srcs.contains(&[5], &[10]));
        assert!(!srcs.contains(&[3], &[10]));
        assert!(!srcs.contains(&[6], &[10]));
    }

    #[test]
    fn direction_sign_helpers() {
        assert!(DirSign::Zero.is_non_negative());
        assert!(DirSign::Pos.is_non_negative());
        assert!(DirSign::Empty.is_non_negative());
        assert!(!DirSign::Neg.is_non_negative());
        assert!(!DirSign::Star.is_non_negative());
    }
}
