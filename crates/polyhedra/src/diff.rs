//! Polyhedral difference: `A \ B` as a union of disjoint polyhedra.
//!
//! Used to make overlapping data spaces disjoint before scanning, so
//! that generated move-in/move-out code loads/stores each element
//! exactly once (the single-transfer guarantee of §3.1.3), and to
//! decompose a union of data spaces into disjoint pieces for exact
//! counting.
//!
//! The construction is the classic one: writing `B`'s constraints as
//! inequalities `b_1, …, b_m`, the difference is the disjoint union of
//! `A ∩ b_1 ∩ … ∩ b_{i-1} ∩ ¬b_i` for `i = 1..m`, where `¬(e >= 0)` is
//! the integer-exact `e <= -1`.

use crate::constraint::Constraint;
use crate::set::Polyhedron;
use crate::{PolyError, Result};

/// Compute `a \ b` as a vector of pairwise-disjoint polyhedra
/// (possibly empty). Both operands must share a space shape.
pub fn difference(a: &Polyhedron, b: &Polyhedron) -> Result<Vec<Polyhedron>> {
    let _timer = crate::cache::CoreTimer::enter();
    if !a.space().same_shape(b.space()) {
        return Err(PolyError::SpaceMismatch { op: "difference" });
    }
    if !crate::cache::naive_mode() {
        return difference_rows(a, b);
    }
    let b_rows = b.as_ineq_rows();
    let mut pieces = Vec::new();
    let mut accum = a.clone();
    for (i, row) in b_rows.iter().enumerate() {
        // piece_i = a ∩ b_0..b_{i-1} ∩ ¬b_i
        let mut piece = accum.clone();
        piece.add_constraint(row.negate_ineq());
        if !piece.is_empty()? {
            pieces.push(piece);
        }
        if i + 1 < b_rows.len() {
            accum.add_constraint(row.clone());
            if accum.is_obviously_empty() {
                break;
            }
        }
    }
    Ok(pieces)
}

/// Fast-path difference on raw constraint rows: candidate pieces are
/// tested for emptiness *before* any `Polyhedron` is built, so the
/// per-row normalization/dedup pass (`simplify`) runs only for the
/// pieces that survive — typically a small fraction. Produces the same
/// piece decomposition as the naive construction.
fn difference_rows(a: &Polyhedron, b: &Polyhedron) -> Result<Vec<Polyhedron>> {
    let b_rows = b.as_ineq_rows();
    // Rows stay normalized (inputs already are) and are tightened on
    // insert — same variable part keeps the smaller constant — so the
    // accumulated system never carries redundant duplicates into the
    // FM feasibility tests.
    let mut accum: Vec<Constraint> = a.constraints().to_vec();
    let mut pieces = Vec::new();
    for (i, row) in b_rows.iter().enumerate() {
        let mut neg = row.negate_ineq();
        neg.normalize();
        let mut refs: Vec<&Constraint> = accum.iter().collect();
        refs.push(&neg);
        if !a.rows_empty_refs(&refs)? {
            let mut cand = accum.clone();
            cand.push(neg);
            pieces.push(Polyhedron::new(a.space().clone(), cand));
        }
        if i + 1 < b_rows.len() {
            push_tight(&mut accum, row.clone());
        }
    }
    Ok(pieces)
}

/// Insert a normalized inequality into a row list, replacing a row
/// with the identical variable part by whichever constant is tighter
/// (an exact intersection step). Equalities and unmatched rows append.
fn push_tight(rows: &mut Vec<Constraint>, c: Constraint) {
    use crate::constraint::ConstraintKind;
    if c.kind == ConstraintKind::Ineq {
        let n = c.len();
        for r in rows.iter_mut() {
            if r.kind == ConstraintKind::Ineq && r.coeffs[..n - 1] == c.coeffs[..n - 1] {
                if c.constant() < r.constant() {
                    *r = c;
                }
                return;
            }
        }
    }
    rows.push(c);
}

/// Subtract a whole list of polyhedra from `a`, returning disjoint
/// pieces covering exactly `a \ (b_1 ∪ … ∪ b_k)`.
pub fn difference_all(a: &Polyhedron, bs: &[Polyhedron]) -> Result<Vec<Polyhedron>> {
    let mut pieces = vec![a.clone()];
    for b in bs {
        let mut next = Vec::new();
        for p in &pieces {
            next.extend(difference(p, b)?);
        }
        pieces = next;
        if pieces.is_empty() {
            break;
        }
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::space::Space;

    fn interval(lo: i64, hi: i64) -> Polyhedron {
        Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, -lo]),
                Constraint::ineq(vec![-1, hi]),
            ],
        )
    }

    fn box2(lo: (i64, i64), hi: (i64, i64)) -> Polyhedron {
        Polyhedron::new(
            Space::new(["x", "y"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0, -lo.0]),
                Constraint::ineq(vec![-1, 0, hi.0]),
                Constraint::ineq(vec![0, 1, -lo.1]),
                Constraint::ineq(vec![0, -1, hi.1]),
            ],
        )
    }

    fn members_1d(pieces: &[Polyhedron], range: std::ops::RangeInclusive<i64>) -> Vec<i64> {
        let mut out = Vec::new();
        for v in range {
            let n = pieces.iter().filter(|p| p.contains(&[v], &[])).count();
            assert!(n <= 1, "pieces overlap at {v}");
            if n == 1 {
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn interval_difference() {
        // [0,10] \ [3,5] = [0,2] ∪ [6,10]
        let d = difference(&interval(0, 10), &interval(3, 5)).unwrap();
        assert_eq!(members_1d(&d, -2..=12), vec![0, 1, 2, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn difference_with_disjoint_subtrahend_is_identity() {
        let d = difference(&interval(0, 4), &interval(10, 20)).unwrap();
        assert_eq!(members_1d(&d, -1..=21), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn difference_with_superset_is_empty() {
        let d = difference(&interval(3, 5), &interval(0, 10)).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn two_dimensional_l_shape() {
        // [0,3]^2 \ [2,3]^2 leaves an L of 16 - 4 = 12 points, disjoint.
        let d = difference(&box2((0, 0), (3, 3)), &box2((2, 2), (3, 3))).unwrap();
        let mut count = 0;
        for x in 0..=3 {
            for y in 0..=3 {
                let n = d.iter().filter(|p| p.contains(&[x, y], &[])).count();
                assert!(n <= 1, "overlap at ({x},{y})");
                count += n;
            }
        }
        assert_eq!(count, 12);
        // Nothing outside the original box.
        assert!(d.iter().all(|p| !p.contains(&[4, 0], &[])));
    }

    #[test]
    fn difference_all_subtracts_union() {
        // [0,10] \ ([2,3] ∪ [6,8]) = {0,1,4,5,9,10}
        let d = difference_all(&interval(0, 10), &[interval(2, 3), interval(6, 8)]).unwrap();
        assert_eq!(members_1d(&d, -1..=11), vec![0, 1, 4, 5, 9, 10]);
    }

    #[test]
    fn difference_all_with_empty_list_is_identity() {
        let d = difference_all(&interval(1, 2), &[]).unwrap();
        assert_eq!(members_1d(&d, 0..=3), vec![1, 2]);
    }
}
