//! Affine maps between spaces: array access functions and transforms.
//!
//! An [`AffineMap`] is the matrix `F` of the paper: each row maps an
//! iteration vector (plus parameters and a constant) to one dimension
//! of a data space, `F(i) = F · (i, p, 1)ᵀ`. The key operation is
//! [`AffineMap::image`], which computes the data space `F·I` accessed
//! by a reference over an iteration polytope `I` — step 3 of
//! Algorithm 2.

use crate::constraint::Constraint;
use crate::set::Polyhedron;
use crate::space::Space;
use crate::{PolyError, Result};
use polymem_linalg::{IMat, IVec};
use std::fmt;

/// An affine map `in -> out` with rows over `[in dims, params, 1]`.
#[derive(Clone, PartialEq, Eq)]
pub struct AffineMap {
    in_space: Space,
    out_space: Space,
    /// One row per output dimension; width = in_space.n_cols().
    matrix: IMat,
}

impl AffineMap {
    /// Build from row data. Each row has `in_space.n_cols()` entries.
    pub fn new(in_space: Space, out_space: Space, matrix: IMat) -> AffineMap {
        assert_eq!(matrix.rows(), out_space.n_dims(), "one row per out dim");
        assert_eq!(matrix.cols(), in_space.n_cols(), "row width = in cols");
        assert_eq!(
            in_space.n_params(),
            out_space.n_params(),
            "in/out spaces share parameters"
        );
        AffineMap {
            in_space,
            out_space,
            matrix,
        }
    }

    /// Build from slices of rows.
    pub fn from_rows(in_space: Space, out_space: Space, rows: &[&[i64]]) -> AffineMap {
        AffineMap::new(in_space, out_space, IMat::from_rows(rows))
    }

    /// The identity map on a space.
    pub fn identity(space: Space) -> AffineMap {
        let n = space.n_dims();
        let mut m = IMat::zeros(n, space.n_cols());
        for i in 0..n {
            m[(i, i)] = 1;
        }
        AffineMap::new(space.clone(), space, m)
    }

    /// Input space.
    pub fn in_space(&self) -> &Space {
        &self.in_space
    }

    /// Output space.
    pub fn out_space(&self) -> &Space {
        &self.out_space
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &IMat {
        &self.matrix
    }

    /// Number of output dimensions.
    pub fn n_out(&self) -> usize {
        self.out_space.n_dims()
    }

    /// Number of input dimensions.
    pub fn n_in(&self) -> usize {
        self.in_space.n_dims()
    }

    /// Apply to a concrete point.
    pub fn apply(&self, x: &[i64], q: &[i64]) -> Result<Vec<i64>> {
        if x.len() != self.n_in() || q.len() != self.in_space.n_params() {
            return Err(PolyError::SpaceMismatch { op: "apply" });
        }
        let mut v: Vec<i64> = x.to_vec();
        v.extend_from_slice(q);
        v.push(1);
        Ok(self.matrix.mul_vec(&IVec(v))?.0)
    }

    /// Rank of the map restricted to the **input-dimension columns**
    /// (parameters and constants excluded). This is the `rank(F)` of
    /// the paper's Algorithm 1 reuse test.
    pub fn dim_rank(&self) -> Result<usize> {
        let cols: Vec<usize> = (0..self.n_in()).collect();
        Ok(self.matrix.select_cols(&cols).rank()?)
    }

    /// The image `F·I` of a domain polytope under this map.
    ///
    /// Constructs the graph polytope over `[out dims, in dims]`
    /// (equalities `out_r = F_r(in, q)` plus the domain constraints)
    /// and eliminates the input dims. Exact when elimination pivots on
    /// ±1 coefficients (the common case); otherwise a safe
    /// over-approximation (see crate-level notes).
    pub fn image(&self, domain: &Polyhedron) -> Result<Polyhedron> {
        if !domain.space().same_shape(&self.in_space) {
            return Err(PolyError::SpaceMismatch { op: "image" });
        }
        let n_out = self.n_out();
        let n_in = self.n_in();
        let n_params = self.in_space.n_params();
        let combined_space = self.out_space.product(&self.in_space);
        let ncols = combined_space.n_cols();
        let mut rows: Vec<Constraint> = Vec::new();
        // out_r - F_r(in, q, 1) = 0
        for r in 0..n_out {
            let mut row = vec![0i64; ncols];
            row[r] = 1;
            for j in 0..n_in {
                row[n_out + j] = -self.matrix[(r, j)];
            }
            for j in 0..n_params {
                row[n_out + n_in + j] = -self.matrix[(r, n_in + j)];
            }
            row[ncols - 1] = -self.matrix[(r, n_in + n_params)];
            rows.push(Constraint::eq(row));
        }
        // Domain constraints, shifted right by n_out dims.
        for c in domain.constraints() {
            let mut row = vec![0i64; ncols];
            for j in 0..n_in {
                row[n_out + j] = c.coeff(j);
            }
            for j in 0..(n_params + 1) {
                row[n_out + n_in + j] = c.coeff(n_in + j);
            }
            rows.push(Constraint {
                coeffs: row.into(),
                kind: c.kind,
            });
        }
        let combined = Polyhedron::new(combined_space, rows);
        let drop: Vec<usize> = (n_out..n_out + n_in).collect();
        combined.eliminate_dims(&drop)
    }

    /// The preimage `{ x in domain-space : F(x) in set }`.
    pub fn preimage(&self, set: &Polyhedron) -> Result<Polyhedron> {
        if !set.space().same_shape(&self.out_space) {
            return Err(PolyError::SpaceMismatch { op: "preimage" });
        }
        let n_in = self.n_in();
        let n_params = self.in_space.n_params();
        let ncols = self.in_space.n_cols();
        let rows = set
            .constraints()
            .iter()
            .map(|c| {
                // Substitute out_r := F_r(in): row' = sum_r c_r * F_r + tail.
                let mut row = vec![0i128; ncols];
                for r in 0..self.n_out() {
                    let cr = c.coeff(r) as i128;
                    if cr == 0 {
                        continue;
                    }
                    for (j, rj) in row.iter_mut().enumerate().take(self.matrix.cols()) {
                        // Matrix column layout equals in-space layout.
                        *rj += cr * (self.matrix[(r, j)] as i128);
                    }
                }
                for j in 0..(n_params + 1) {
                    row[n_in + j] += c.coeff(self.n_out() + j) as i128;
                }
                let row: Vec<i64> = row
                    .into_iter()
                    .map(|v| i64::try_from(v).map_err(|_| polymem_linalg::LinalgError::Overflow))
                    .collect::<std::result::Result<_, _>>()?;
                Ok(Constraint {
                    coeffs: row.into(),
                    kind: c.kind,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Polyhedron::new(self.in_space.clone(), rows))
    }

    /// A new map whose input space has `names` inserted as fresh dims
    /// at position `pos`; all rows get zero coefficients there. Used
    /// when tiling adds tile iterators the accesses do not reference.
    pub fn insert_input_dims(&self, pos: usize, names: &[String]) -> AffineMap {
        assert!(pos <= self.n_in());
        let mut dims = self.in_space.dims().to_vec();
        for (k, n) in names.iter().enumerate() {
            dims.insert(pos + k, n.clone());
        }
        let in_space = Space::new(dims, self.in_space.params().to_vec());
        let mut m = IMat::zeros(0, 0);
        for r in 0..self.matrix.rows() {
            let mut row = self.matrix.row(r).to_vec();
            for k in 0..names.len() {
                row.insert(pos + k, 0);
            }
            m.push_row(&row);
        }
        AffineMap::new(in_space, self.out_space.clone(), m)
    }

    /// A new map whose input dims are permuted: new input dim `i` is
    /// old input dim `order[i]` (parameters and constants untouched).
    pub fn permute_input_dims(&self, order: &[usize]) -> AffineMap {
        assert_eq!(order.len(), self.n_in());
        let in_space = self.in_space.keep_dims(order);
        let mut m = IMat::zeros(0, 0);
        for r in 0..self.matrix.rows() {
            let old = self.matrix.row(r);
            let mut row: Vec<i64> = order.iter().map(|&o| old[o]).collect();
            row.extend_from_slice(&old[self.n_in()..]);
            m.push_row(&row);
        }
        AffineMap::new(in_space, self.out_space.clone(), m)
    }

    /// A new map keeping only the listed output rows (in order).
    pub fn select_outputs(&self, rows: &[usize], out_space: Space) -> AffineMap {
        AffineMap::new(
            self.in_space.clone(),
            out_space,
            self.matrix.select_rows(rows),
        )
    }
}

impl fmt::Debug for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AffineMap {:?} -> {:?} {:?}",
            self.in_space, self.out_space, self.matrix
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Iteration space { (i, j) : 0 <= i, j <= N-1 }.
    fn square() -> Polyhedron {
        Polyhedron::new(
            Space::new(["i", "j"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, 0, 0]),
                Constraint::ineq(vec![-1, 0, 1, -1]),
                Constraint::ineq(vec![0, 1, 0, 0]),
                Constraint::ineq(vec![0, -1, 1, -1]),
            ],
        )
    }

    #[test]
    fn apply_evaluates_rows() {
        // A[i + j][j + 1] over params (N).
        let m = AffineMap::from_rows(
            Space::new(["i", "j"], ["N"]),
            Space::new(["a0", "a1"], ["N"]),
            &[&[1, 1, 0, 0], &[0, 1, 0, 1]],
        );
        assert_eq!(m.apply(&[2, 3], &[10]).unwrap(), vec![5, 4]);
    }

    #[test]
    fn rank_ignores_params_and_constants() {
        // A[i][k] in an (i,j,k) nest: rank 2 < 3 (reuse along j).
        let m = AffineMap::from_rows(
            Space::new(["i", "j", "k"], ["N"]),
            Space::new(["a0", "a1"], ["N"]),
            &[&[1, 0, 0, 0, 0], &[0, 0, 1, 0, 0]],
        );
        assert_eq!(m.dim_rank().unwrap(), 2);
        // A[i][N] — the parameter column must not raise the rank.
        let m = AffineMap::from_rows(
            Space::new(["i", "j"], ["N"]),
            Space::new(["a0", "a1"], ["N"]),
            &[&[1, 0, 0, 0], &[0, 0, 1, 0]],
        );
        assert_eq!(m.dim_rank().unwrap(), 1);
    }

    #[test]
    fn image_of_identity_is_domain() {
        let s = square();
        let id = AffineMap::identity(s.space().clone());
        let img = id.image(&s).unwrap();
        for (x, q) in [([0, 0], [5]), ([4, 4], [5]), ([2, 3], [5])] {
            assert_eq!(img.contains(&x, &q), s.contains(&x, &q));
        }
        assert!(!img.contains(&[5, 0], &[5]));
    }

    #[test]
    fn image_of_shifted_access() {
        // A[i + 2][j - 1] over the square: image is the shifted square.
        let s = square();
        let m = AffineMap::from_rows(
            s.space().clone(),
            Space::new(["a0", "a1"], ["N"]),
            &[&[1, 0, 0, 2], &[0, 1, 0, -1]],
        );
        let img = m.image(&s).unwrap();
        assert!(img.contains(&[2, -1], &[5]));
        assert!(img.contains(&[6, 3], &[5]));
        assert!(!img.contains(&[1, 0], &[5]));
        assert!(!img.contains(&[7, 0], &[5]));
    }

    #[test]
    fn image_of_rank_deficient_access_is_lower_dimensional() {
        // A[i][i]: the image is the diagonal, captured by an equality.
        let s = square();
        let m = AffineMap::from_rows(
            s.space().clone(),
            Space::new(["a0", "a1"], ["N"]),
            &[&[1, 0, 0, 0], &[1, 0, 0, 0]],
        );
        let img = m.image(&s).unwrap();
        assert!(img.contains(&[3, 3], &[5]));
        assert!(!img.contains(&[3, 4], &[5]));
        assert_eq!(img.equalities().len(), 1);
    }

    #[test]
    fn preimage_inverts_membership() {
        let s = square();
        let m = AffineMap::from_rows(
            s.space().clone(),
            Space::new(["a0"], ["N"]),
            &[&[1, 1, 0, 0]], // a0 = i + j
        );
        // set { a0 : a0 = 4 }
        let set = Polyhedron::new(
            Space::new(["a0"], ["N"]),
            vec![Constraint::eq(vec![1, 0, -4])],
        );
        let pre = m.preimage(&set).unwrap();
        assert!(pre.contains(&[1, 3], &[10]));
        assert!(pre.contains(&[4, 0], &[10]));
        assert!(!pre.contains(&[1, 2], &[10]));
    }

    #[test]
    fn select_outputs_drops_rows() {
        let m = AffineMap::from_rows(
            Space::new(["i", "j"], ["N"]),
            Space::new(["a0", "a1"], ["N"]),
            &[&[1, 0, 0, 0], &[0, 1, 0, 0]],
        );
        let sel = m.select_outputs(&[1], Space::new(["a1"], ["N"]));
        assert_eq!(sel.n_out(), 1);
        assert_eq!(sel.apply(&[2, 7], &[0]).unwrap(), vec![7]);
    }
}
