//! Affine constraints: normalised equality/inequality rows.
//!
//! A [`Constraint`] is a coefficient row `c` over the columns of a
//! [`Space`](crate::Space) meaning `c · (x, q, 1) >= 0` (inequality) or
//! `= 0` (equality). Rows are kept *normalised*: coefficients divided
//! by their gcd, with integer tightening of the constant for
//! inequalities (`2x >= 3` becomes `x >= 2`).

use polymem_linalg::gcd::{div_floor, gcd_slice};
use polymem_linalg::IVec;
use std::fmt;

/// Whether a row is an inequality (`>= 0`) or equality (`= 0`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintKind {
    /// `coeffs · (x, q, 1) >= 0`
    Ineq,
    /// `coeffs · (x, q, 1) == 0`
    Eq,
}

/// A single affine constraint row.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Coefficients over `[dims..., params..., 1]`.
    pub coeffs: IVec,
    /// Inequality or equality.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// Build and normalise an inequality `coeffs · (x,q,1) >= 0`.
    pub fn ineq(coeffs: impl Into<IVec>) -> Constraint {
        let mut c = Constraint {
            coeffs: coeffs.into(),
            kind: ConstraintKind::Ineq,
        };
        c.normalize();
        c
    }

    /// Build and normalise an equality `coeffs · (x,q,1) == 0`.
    pub fn eq(coeffs: impl Into<IVec>) -> Constraint {
        let mut c = Constraint {
            coeffs: coeffs.into(),
            kind: ConstraintKind::Eq,
        };
        c.normalize();
        c
    }

    /// Number of columns (dims + params + 1).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True iff the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of column `i`.
    pub fn coeff(&self, i: usize) -> i64 {
        self.coeffs[i]
    }

    /// The constant term (last column).
    pub fn constant(&self) -> i64 {
        self.coeffs[self.coeffs.len() - 1]
    }

    /// Normalise in place: divide by the gcd of all coefficients; for
    /// inequalities, tighten the constant (`g·x + c >= 0` with
    /// variable-gcd `g` implies `x + floor(c/g) >= 0`).
    pub fn normalize(&mut self) {
        let n = self.coeffs.len();
        if n == 0 {
            return;
        }
        let var_gcd = gcd_slice(&self.coeffs[..n - 1]);
        match self.kind {
            ConstraintKind::Ineq => {
                if var_gcd > 1 {
                    for x in &mut self.coeffs.0[..n - 1] {
                        *x /= var_gcd;
                    }
                    self.coeffs[n - 1] = div_floor(self.coeffs[n - 1], var_gcd);
                }
            }
            ConstraintKind::Eq => {
                let g = gcd_slice(&self.coeffs);
                if g > 1 {
                    for x in &mut self.coeffs.0 {
                        *x /= g;
                    }
                }
                // Canonical sign: first nonzero coefficient positive.
                if self.coeffs.lex_sign() < 0 {
                    for x in &mut self.coeffs.0 {
                        *x = -*x;
                    }
                }
            }
        }
    }

    /// True iff the constraint involves none of the first `n_dims`
    /// columns (i.e. it constrains only parameters/constants).
    pub fn is_param_only(&self, n_dims: usize) -> bool {
        self.coeffs[..n_dims].iter().all(|&c| c == 0)
    }

    /// True iff all coefficients (including constant) are zero.
    pub fn is_trivial(&self) -> bool {
        self.coeffs.is_zero()
    }

    /// For a constraint whose variable and parameter coefficients are
    /// all zero: is it satisfiable? (`None` if it still has variables.)
    pub fn constant_verdict(&self) -> Option<bool> {
        let n = self.coeffs.len();
        if self.coeffs[..n - 1].iter().any(|&c| c != 0) {
            return None;
        }
        let k = self.coeffs[n - 1];
        Some(match self.kind {
            ConstraintKind::Ineq => k >= 0,
            ConstraintKind::Eq => k == 0,
        })
    }

    /// Evaluate the row at concrete dim values `x` and param values `q`.
    pub fn eval(&self, x: &[i64], q: &[i64]) -> i64 {
        let n = self.coeffs.len();
        debug_assert_eq!(x.len() + q.len() + 1, n);
        let mut acc: i128 = self.coeffs[n - 1] as i128;
        for (c, v) in self.coeffs[..x.len()].iter().zip(x) {
            acc += (*c as i128) * (*v as i128);
        }
        for (c, v) in self.coeffs[x.len()..n - 1].iter().zip(q) {
            acc += (*c as i128) * (*v as i128);
        }
        acc as i64
    }

    /// True iff point `(x, q)` satisfies the constraint.
    pub fn satisfied(&self, x: &[i64], q: &[i64]) -> bool {
        let v = self.eval(x, q);
        match self.kind {
            ConstraintKind::Ineq => v >= 0,
            ConstraintKind::Eq => v == 0,
        }
    }

    /// The negation of an inequality `e >= 0` as the inequality
    /// `-e - 1 >= 0` (i.e. `e <= -1`, exact over the integers).
    /// Panics on equalities (negate those via two calls on the split
    /// inequalities).
    pub fn negate_ineq(&self) -> Constraint {
        assert_eq!(self.kind, ConstraintKind::Ineq, "negate_ineq on equality");
        let mut coeffs: Vec<i64> = self.coeffs.iter().map(|&c| -c).collect();
        let n = coeffs.len();
        coeffs[n - 1] -= 1;
        Constraint::ineq(coeffs)
    }

    /// Split an equality into the two inequalities `e >= 0` and `-e >= 0`.
    /// An inequality is returned unchanged (singleton).
    pub fn as_ineqs(&self) -> Vec<Constraint> {
        match self.kind {
            ConstraintKind::Ineq => vec![self.clone()],
            ConstraintKind::Eq => {
                let neg: Vec<i64> = self.coeffs.iter().map(|&c| -c).collect();
                vec![Constraint::ineq(self.coeffs.clone()), Constraint::ineq(neg)]
            }
        }
    }

    /// Render with names, e.g. `i + 2j - N + 3 >= 0`.
    pub fn display(&self, dim_names: &[String], param_names: &[String]) -> String {
        let mut s = String::new();
        let names: Vec<&str> = dim_names
            .iter()
            .map(String::as_str)
            .chain(param_names.iter().map(String::as_str))
            .collect();
        for (idx, &c) in self.coeffs[..self.coeffs.len() - 1].iter().enumerate() {
            if c == 0 {
                continue;
            }
            if s.is_empty() {
                if c == -1 {
                    s.push('-');
                } else if c != 1 {
                    s.push_str(&format!("{c}*"));
                }
            } else if c > 0 {
                s.push_str(" + ");
                if c != 1 {
                    s.push_str(&format!("{c}*"));
                }
            } else {
                s.push_str(" - ");
                if c != -1 {
                    s.push_str(&format!("{}*", -c));
                }
            }
            s.push_str(names[idx]);
        }
        let k = self.constant();
        if s.is_empty() {
            s.push_str(&format!("{k}"));
        } else if k > 0 {
            s.push_str(&format!(" + {k}"));
        } else if k < 0 {
            s.push_str(&format!(" - {}", -k));
        }
        s.push_str(match self.kind {
            ConstraintKind::Ineq => " >= 0",
            ConstraintKind::Eq => " == 0",
        });
        s
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}",
            self.coeffs,
            match self.kind {
                ConstraintKind::Ineq => ">= 0",
                ConstraintKind::Eq => "== 0",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_tightens_inequalities() {
        // 2x + 3 >= 0  ->  x + 1 >= 0 (since x >= -3/2 means x >= -1).
        let c = Constraint::ineq(vec![2, 3]);
        assert_eq!(c.coeffs.0, vec![1, 1]);
        // 2x - 3 >= 0  ->  x - 2 >= 0 (x >= 3/2 means x >= 2).
        let c = Constraint::ineq(vec![2, -3]);
        assert_eq!(c.coeffs.0, vec![1, -2]);
        // Constant-only rows are untouched by variable-gcd logic.
        let c = Constraint::ineq(vec![0, 5]);
        assert_eq!(c.coeffs.0, vec![0, 5]);
    }

    #[test]
    fn normalisation_canonicalises_equalities() {
        let c = Constraint::eq(vec![-2, 4, -6]);
        assert_eq!(c.coeffs.0, vec![1, -2, 3]);
        let c = Constraint::eq(vec![3, -6, 9]);
        assert_eq!(c.coeffs.0, vec![1, -2, 3]);
    }

    #[test]
    fn evaluation_and_satisfaction() {
        // x - y + N - 2 >= 0 over dims (x, y), param N.
        let c = Constraint::ineq(vec![1, -1, 1, -2]);
        assert_eq!(c.eval(&[5, 1], &[0]), 2);
        assert!(c.satisfied(&[5, 1], &[0]));
        assert!(!c.satisfied(&[0, 5], &[1]));
        let e = Constraint::eq(vec![1, -1, 0, 0]);
        assert!(e.satisfied(&[3, 3], &[7]));
        assert!(!e.satisfied(&[3, 4], &[7]));
    }

    #[test]
    fn negation_is_exact_integer_complement() {
        // x - 3 >= 0 negated is x <= 2, i.e. -x + 2 >= 0.
        let c = Constraint::ineq(vec![1, -3]);
        let n = c.negate_ineq();
        assert_eq!(n.coeffs.0, vec![-1, 2]);
        for x in -5..10 {
            assert_ne!(c.satisfied(&[x], &[]), n.satisfied(&[x], &[]));
        }
    }

    #[test]
    fn equality_split() {
        let e = Constraint::eq(vec![1, -2]);
        let parts = e.as_ineqs();
        assert_eq!(parts.len(), 2);
        for x in -5..5 {
            let both = parts.iter().all(|c| c.satisfied(&[x], &[]));
            assert_eq!(both, e.satisfied(&[x], &[]));
        }
    }

    #[test]
    fn constant_verdicts() {
        assert_eq!(
            Constraint::ineq(vec![0, 0, -1]).constant_verdict(),
            Some(false)
        );
        assert_eq!(
            Constraint::ineq(vec![0, 0, 3]).constant_verdict(),
            Some(true)
        );
        assert_eq!(
            Constraint::eq(vec![0, 0, 1]).constant_verdict(),
            Some(false)
        );
        assert_eq!(Constraint::ineq(vec![1, 0, -1]).constant_verdict(), None);
    }

    #[test]
    fn display_rendering() {
        let c = Constraint::ineq(vec![1, 2, -1, 3]);
        let s = c.display(&["i".to_string(), "j".to_string()], &["N".to_string()]);
        assert_eq!(s, "i + 2*j - N + 3 >= 0");
        let z = Constraint::ineq(vec![0, 0, 0, -1]);
        assert_eq!(
            z.display(&["i".into(), "j".into()], &["N".into()]),
            "-1 >= 0"
        );
    }

    #[test]
    fn param_only_detection() {
        let c = Constraint::ineq(vec![0, 0, 1, -4]); // N - 4 >= 0 over 2 dims
        assert!(c.is_param_only(2));
        let c = Constraint::ineq(vec![1, 0, 1, 0]);
        assert!(!c.is_param_only(2));
    }
}
