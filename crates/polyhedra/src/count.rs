//! Integer point enumeration and counting.
//!
//! Algorithm 1 of the paper estimates *constant reuse* by comparing the
//! volume of pairwise overlaps of data spaces against the total volume
//! of the set (threshold δ = 30 %). This module provides the exact
//! counts: a recursive scan over a non-parametric polytope using the
//! Fourier–Motzkin bound cascade (outer dimension first, inner bounds
//! re-derived in the outer context).
//!
//! Enumeration requires a bounded, parameter-free polytope; callers
//! with symbolic parameters substitute representative values first
//! (see [`Polyhedron::substitute_params`]). A point `budget` bounds
//! worst-case work; exceeding it returns
//! [`PolyError::TooManyPoints`](crate::PolyError) so
//! callers can fall back to bounding-box estimates.

use crate::bounds::{bound_cascade, dim_bounds, DimBounds};
use crate::set::Polyhedron;
use crate::{PolyError, Result};

/// Exact number of integer points in a non-parametric polytope.
pub fn count_points(poly: &Polyhedron, budget: u64) -> Result<u64> {
    let mut n = 0u64;
    enumerate_points(poly, budget, &mut |_| n += 1)?;
    Ok(n)
}

/// Visit every integer point of a non-parametric polytope in
/// lexicographic order. The callback receives the point coordinates.
pub fn enumerate_points(
    poly: &Polyhedron,
    budget: u64,
    visit: &mut dyn FnMut(&[i64]),
) -> Result<()> {
    let _timer = crate::cache::CoreTimer::enter();
    if poly.n_params() != 0 {
        return Err(PolyError::Unbounded);
    }
    if poly.is_empty()? {
        return Ok(());
    }
    // Bound cascade: bounds of dim j in the context of dims 0..j,
    // derived incrementally from the suffix projections.
    let cascade: Vec<DimBounds> = bound_cascade(poly)?;
    enumerate_with_cascade(poly, &cascade, &[], budget, visit)
}

/// Visit every integer point of a *parametric* polytope at the given
/// parameter values, in lexicographic order, using a caller-supplied
/// bound cascade (`cascade[d]` = bounds of dim `d` in the context of
/// dims `0..d`, as produced by [`bound_cascade`]). Because the cascade
/// depends only on the symbolic polyhedron, a caller enumerating the
/// same shape at many parameter vectors — e.g. the blocked executor
/// visiting every block of a tiled domain — derives it once and pays
/// only bound evaluation per instance.
pub fn enumerate_with_cascade(
    poly: &Polyhedron,
    cascade: &[DimBounds],
    qvals: &[i64],
    budget: u64,
    visit: &mut dyn FnMut(&[i64]),
) -> Result<()> {
    let _timer = crate::cache::CoreTimer::enter();
    if qvals.len() != poly.n_params() || cascade.len() != poly.n_dims() {
        return Err(PolyError::SpaceMismatch {
            op: "enumerate_with_cascade",
        });
    }
    if cascade.is_empty() {
        // Zero-dimensional set: the single (empty) point, if any.
        if poly.contains(&[], qvals) {
            visit(&[]);
        }
        return Ok(());
    }
    let mut point = vec![0i64; cascade.len()];
    let mut visited = 0u64;
    scan(
        poly,
        cascade,
        qvals,
        0,
        &mut point,
        budget,
        &mut visited,
        visit,
    )
}

#[allow(clippy::too_many_arguments)]
fn scan(
    poly: &Polyhedron,
    cascade: &[DimBounds],
    qvals: &[i64],
    depth: usize,
    point: &mut Vec<i64>,
    budget: u64,
    visited: &mut u64,
    visit: &mut dyn FnMut(&[i64]),
) -> Result<()> {
    let n = cascade.len();
    let ctx = point[..depth].to_vec();
    let Some((lo, hi)) = cascade[depth].eval_range(&ctx, qvals) else {
        // Unbounded in some direction at this depth.
        if cascade[depth].lower.is_unbounded() || cascade[depth].upper.is_unbounded() {
            return Err(PolyError::Unbounded);
        }
        return Ok(()); // empty range here
    };
    for v in lo..=hi {
        point[depth] = v;
        if depth + 1 == n {
            // The FM cascade can over-approximate for non-unit
            // coefficients; the final membership check keeps the
            // enumeration exact.
            if poly.contains(point, qvals) {
                *visited += 1;
                if *visited > budget {
                    return Err(PolyError::TooManyPoints { budget });
                }
                visit(point);
            }
        } else {
            scan(
                poly,
                cascade,
                qvals,
                depth + 1,
                point,
                budget,
                visited,
                visit,
            )?;
        }
    }
    Ok(())
}

/// A fast upper bound on the number of integer points: the product of
/// per-dimension bounding-box extents. Used as the fallback volume
/// estimate when exact counting would exceed its budget (mirrors the
/// paper's use of bounding boxes for buffer sizing).
pub fn bounding_box_volume(poly: &Polyhedron) -> Result<u64> {
    let _timer = crate::cache::CoreTimer::enter();
    if poly.n_params() != 0 {
        return Err(PolyError::Unbounded);
    }
    if poly.is_empty()? {
        return Ok(0);
    }
    let mut vol: u128 = 1;
    for d in 0..poly.n_dims() {
        let b = dim_bounds(poly, d, 0)?;
        let Some((lo, hi)) = b.eval_range(&[], &[]) else {
            return Err(PolyError::Unbounded);
        };
        if hi < lo {
            return Ok(0);
        }
        vol = vol.saturating_mul((hi - lo + 1) as u128);
    }
    Ok(u64::try_from(vol).unwrap_or(u64::MAX))
}

/// Count points, falling back to the bounding-box estimate if the
/// exact scan exceeds `budget`. The boolean is `true` when the count
/// is exact.
pub fn count_or_estimate(poly: &Polyhedron, budget: u64) -> Result<(u64, bool)> {
    match count_points(poly, budget) {
        Ok(n) => Ok((n, true)),
        Err(PolyError::TooManyPoints { .. }) => Ok((bounding_box_volume(poly)?, false)),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::space::Space;

    fn triangle_n(n: i64) -> Polyhedron {
        // { (i, j) : 0 <= i <= n-1, 0 <= j <= i }
        Polyhedron::new(
            Space::new(["i", "j"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0, 0]),
                Constraint::ineq(vec![-1, 0, n - 1]),
                Constraint::ineq(vec![0, 1, 0]),
                Constraint::ineq(vec![1, -1, 0]),
            ],
        )
    }

    #[test]
    fn counts_triangle() {
        // Sum of 1..=10 = 55 points.
        assert_eq!(count_points(&triangle_n(10), 1000).unwrap(), 55);
    }

    #[test]
    fn counts_empty_and_point() {
        let empty = Polyhedron::empty(Space::new(["i"], Vec::<String>::new()));
        assert_eq!(count_points(&empty, 10).unwrap(), 0);
        let pt = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![Constraint::eq(vec![1, -7])],
        );
        assert_eq!(count_points(&pt, 10).unwrap(), 1);
    }

    #[test]
    fn enumeration_is_lexicographic_and_exact() {
        let mut pts = Vec::new();
        enumerate_points(&triangle_n(3), 100, &mut |p| pts.push(p.to_vec())).unwrap();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![1, 1],
                vec![2, 0],
                vec![2, 1],
                vec![2, 2]
            ]
        );
    }

    #[test]
    fn stride_constraints_respect_integrality() {
        // { i : 0 <= i <= 10, 2i = j for some j in [0,10] } — directly:
        // points with 3i in [4, 10] → i in {2, 3}.
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![3, -4]),
                Constraint::ineq(vec![-3, 10]),
            ],
        );
        assert_eq!(count_points(&p, 100).unwrap(), 2);
    }

    #[test]
    fn budget_is_enforced() {
        let big = triangle_n(100); // 5050 points
        assert!(matches!(
            count_points(&big, 10),
            Err(PolyError::TooManyPoints { budget: 10 })
        ));
        let (est, exact) = count_or_estimate(&big, 10).unwrap();
        assert!(!exact);
        assert_eq!(est, 100 * 100); // bounding box
        let (n, exact) = count_or_estimate(&big, 100_000).unwrap();
        assert!(exact);
        assert_eq!(n, 5050);
    }

    #[test]
    fn parametric_sets_are_rejected() {
        let p = Polyhedron::universe(Space::new(["i"], ["N"]));
        assert!(matches!(count_points(&p, 10), Err(PolyError::Unbounded)));
        assert!(matches!(bounding_box_volume(&p), Err(PolyError::Unbounded)));
    }

    #[test]
    fn unbounded_sets_are_rejected() {
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![Constraint::ineq(vec![1, 0])],
        );
        assert!(matches!(count_points(&p, 10), Err(PolyError::Unbounded)));
    }

    #[test]
    fn bounding_box_of_diagonal_strip() {
        // { (i,j) : 0<=i<=4, j = i } has 5 points but box volume 25.
        let p = Polyhedron::new(
            Space::new(["i", "j"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0, 0]),
                Constraint::ineq(vec![-1, 0, 4]),
                Constraint::eq(vec![1, -1, 0]),
            ],
        );
        assert_eq!(count_points(&p, 100).unwrap(), 5);
        assert_eq!(bounding_box_volume(&p).unwrap(), 25);
    }

    #[test]
    fn zero_dimensional_set() {
        let p = Polyhedron::universe(Space::new(Vec::<String>::new(), Vec::<String>::new()));
        assert_eq!(count_points(&p, 10).unwrap(), 1);
    }
}
