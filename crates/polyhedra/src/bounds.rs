//! Parametric bound extraction — polymem's stand-in for PIP.
//!
//! The paper uses Parametric Integer Programming to find, for each
//! dimension of a convex union of data spaces, lower/upper bounds as
//! affine functions of the program parameters (Algorithm 2, step 8).
//! Here the same bounds fall out of Fourier–Motzkin projection: project
//! the polyhedron onto one dimension (plus parameters, plus optionally
//! an outer-dimension context for code generation), then read each row
//! with a nonzero coefficient on that dimension as a `max`-of-affine
//! lower bound or `min`-of-affine upper bound with an integer divisor
//! (floor/ceil semantics).

use crate::set::Polyhedron;
use crate::{PolyError, Result};
use polymem_linalg::gcd::{div_ceil, div_floor};
use polymem_linalg::IVec;
use std::fmt;

/// An affine form with a positive divisor: `(coeffs · (ctx, q, 1)) / div`,
/// where `ctx` are the context dimensions the form may reference (outer
/// loop iterators during codegen; empty for pure parametric bounds).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineForm {
    /// Coefficients over `[context dims..., params..., 1]`.
    pub coeffs: IVec,
    /// Positive divisor; lower bounds take `ceil`, upper bounds `floor`.
    pub div: i64,
}

impl AffineForm {
    /// A constant form.
    pub fn constant(n_ctx: usize, n_params: usize, value: i64) -> AffineForm {
        let mut coeffs = vec![0; n_ctx + n_params + 1];
        coeffs[n_ctx + n_params] = value;
        AffineForm {
            coeffs: coeffs.into(),
            div: 1,
        }
    }

    /// Evaluate as a lower bound (`ceil` of the rational value).
    pub fn eval_lower(&self, ctx: &[i64], params: &[i64]) -> i64 {
        div_ceil(self.raw(ctx, params), self.div)
    }

    /// Evaluate as an upper bound (`floor` of the rational value).
    pub fn eval_upper(&self, ctx: &[i64], params: &[i64]) -> i64 {
        div_floor(self.raw(ctx, params), self.div)
    }

    /// The undivided numerator value at a concrete point.
    fn raw(&self, ctx: &[i64], params: &[i64]) -> i64 {
        let n = self.coeffs.len();
        debug_assert_eq!(ctx.len() + params.len() + 1, n);
        let mut acc: i128 = self.coeffs[n - 1] as i128;
        for (c, v) in self.coeffs[..ctx.len()].iter().zip(ctx) {
            acc += (*c as i128) * (*v as i128);
        }
        for (c, v) in self.coeffs[ctx.len()..n - 1].iter().zip(params) {
            acc += (*c as i128) * (*v as i128);
        }
        acc as i64
    }

    /// Render with names (divisor shown as `floord`/`ceild` by the
    /// caller; this prints just the numerator and `/div`).
    pub fn display(&self, ctx_names: &[String], param_names: &[String]) -> String {
        let names: Vec<&str> = ctx_names
            .iter()
            .map(String::as_str)
            .chain(param_names.iter().map(String::as_str))
            .collect();
        let mut s = String::new();
        for (idx, &c) in self.coeffs[..self.coeffs.len() - 1].iter().enumerate() {
            if c == 0 {
                continue;
            }
            if s.is_empty() {
                if c == -1 {
                    s.push('-');
                } else if c != 1 {
                    s.push_str(&format!("{c}*"));
                }
            } else if c > 0 {
                s.push_str(" + ");
                if c != 1 {
                    s.push_str(&format!("{c}*"));
                }
            } else {
                s.push_str(" - ");
                if c != -1 {
                    s.push_str(&format!("{}*", -c));
                }
            }
            s.push_str(names[idx]);
        }
        let k = self.coeffs[self.coeffs.len() - 1];
        if s.is_empty() {
            s.push_str(&k.to_string());
        } else if k > 0 {
            s.push_str(&format!(" + {k}"));
        } else if k < 0 {
            s.push_str(&format!(" - {}", -k));
        }
        if self.div != 1 {
            s = format!("({s})/{}", self.div);
        }
        s
    }

    /// True iff the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs[..self.coeffs.len() - 1].iter().all(|&c| c == 0) && self.div == 1
    }
}

impl fmt::Debug for AffineForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{}", self.coeffs, self.div)
    }
}

/// A bound given by combining several affine forms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoundList {
    /// The candidate forms; the effective bound is their max (lower
    /// bounds) or min (upper bounds).
    pub terms: Vec<AffineForm>,
}

impl BoundList {
    /// Evaluate as a lower bound: max over `ceil` of each term.
    pub fn eval_lower(&self, ctx: &[i64], params: &[i64]) -> Option<i64> {
        self.terms.iter().map(|t| t.eval_lower(ctx, params)).max()
    }

    /// Evaluate as an upper bound: min over `floor` of each term.
    pub fn eval_upper(&self, ctx: &[i64], params: &[i64]) -> Option<i64> {
        self.terms.iter().map(|t| t.eval_upper(ctx, params)).min()
    }

    /// True iff there are no candidate terms (unbounded direction).
    pub fn is_unbounded(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Lower and upper bound lists for one dimension.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DimBounds {
    /// Lower bound: `max` of these forms (ceil semantics).
    pub lower: BoundList,
    /// Upper bound: `min` of these forms (floor semantics).
    pub upper: BoundList,
}

impl DimBounds {
    /// Evaluate both ends; `None` if either direction is unbounded or
    /// the range is empty at this point.
    pub fn eval_range(&self, ctx: &[i64], params: &[i64]) -> Option<(i64, i64)> {
        let lo = self.lower.eval_lower(ctx, params)?;
        let hi = self.upper.eval_upper(ctx, params)?;
        Some((lo, hi))
    }
}

/// Extract bounds of dimension `dim` of `poly` in terms of the first
/// `n_ctx` dims (the "outer" context) and the parameters. All dims
/// other than `dim` and the context are eliminated first.
///
/// With `n_ctx == 0` this yields the **parametric bounds** of
/// Algorithm 2 (the PIP role); with `n_ctx == dim` it yields the loop
/// bounds used when scanning dimensions in order (the CLooG role).
pub fn dim_bounds(poly: &Polyhedron, dim: usize, n_ctx: usize) -> Result<DimBounds> {
    let _timer = crate::cache::CoreTimer::enter();
    let n = poly.n_dims();
    if dim >= n {
        return Err(PolyError::BadDim { dim, n_dims: n });
    }
    assert!(n_ctx <= dim, "context dims must precede the bounded dim");
    // Keep dims 0..n_ctx and `dim`; eliminate the rest.
    let drop: Vec<usize> = (0..n).filter(|&d| d != dim && d >= n_ctx).collect();
    let projected = poly.eliminate_dims(&drop)?;
    // In `projected`, the target dim now sits at index n_ctx.
    Ok(read_bounds(&projected, n_ctx))
}

/// Read the bounds of the dim at index `t` straight off the rows of an
/// already-projected polyhedron (everything after `t` eliminated).
fn read_bounds(projected: &Polyhedron, t: usize) -> DimBounds {
    let mut lower = Vec::new();
    let mut upper = Vec::new();
    for c in projected.as_ineq_rows() {
        let a = c.coeff(t);
        if a == 0 {
            continue;
        }
        // a·dim + rest >= 0. For a > 0: dim >= ceil(-rest / a);
        // for a < 0: dim <= floor(rest / (-a)).
        let mut coeffs: Vec<i64> = Vec::with_capacity(c.len() - 1);
        for j in 0..c.len() {
            if j == t {
                continue;
            }
            coeffs.push(if a > 0 { -c.coeff(j) } else { c.coeff(j) });
        }
        let form = AffineForm {
            coeffs: coeffs.into(),
            div: a.abs(),
        };
        if a > 0 {
            lower.push(form);
        } else {
            upper.push(form);
        }
    }
    lower.sort_by(|a, b| (&a.coeffs, a.div).cmp(&(&b.coeffs, b.div)));
    lower.dedup();
    upper.sort_by(|a, b| (&a.coeffs, a.div).cmp(&(&b.coeffs, b.div)));
    upper.dedup();
    DimBounds {
        lower: BoundList { terms: lower },
        upper: BoundList { terms: upper },
    }
}

/// The full loop-bound cascade: `out[d]` is `dim_bounds(poly, d, d)`
/// for every `d` — bounds of each dim in the context of all outer dims,
/// exactly what scanning and enumeration need.
///
/// Computed *incrementally*: dims are eliminated innermost-first, and
/// each suffix projection serves as the starting point for the next, so
/// the whole cascade costs `n - 1` single-dim eliminations instead of
/// the `O(n²)` a per-dim [`dim_bounds`] loop pays. Each step goes
/// through [`Polyhedron::eliminate_dims`], so the suffix chain lands in
/// the projection cache and is shared with any other cascade over the
/// same polyhedron. In naive mode the pre-optimization per-dim path is
/// used instead.
pub fn bound_cascade(poly: &Polyhedron) -> Result<Vec<DimBounds>> {
    let _timer = crate::cache::CoreTimer::enter();
    let n = poly.n_dims();
    if crate::cache::naive_mode() {
        return (0..n).map(|d| dim_bounds(poly, d, d)).collect();
    }
    let mut out: Vec<DimBounds> = Vec::with_capacity(n);
    let mut p = poly.clone();
    for d in (0..n).rev() {
        out.push(read_bounds(&p, d));
        if d > 0 {
            p = p.eliminate_dims(&[d])?;
        }
    }
    out.reverse();
    Ok(out)
}

/// Parametric bounds of every dimension (context-free): the Algorithm 2
/// per-dimension `lb_k`/`ub_k` of the paper.
pub fn all_param_bounds(poly: &Polyhedron) -> Result<Vec<DimBounds>> {
    (0..poly.n_dims()).map(|d| dim_bounds(poly, d, 0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::space::Space;

    fn triangle() -> Polyhedron {
        // { (i, j) : 0 <= i <= N-1, 0 <= j <= i }
        Polyhedron::new(
            Space::new(["i", "j"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, 0, 0]),
                Constraint::ineq(vec![-1, 0, 1, -1]),
                Constraint::ineq(vec![0, 1, 0, 0]),
                Constraint::ineq(vec![1, -1, 0, 0]),
            ],
        )
    }

    #[test]
    fn parametric_bounds_of_triangle() {
        let t = triangle();
        let bi = dim_bounds(&t, 0, 0).unwrap();
        assert_eq!(bi.eval_range(&[], &[10]), Some((0, 9)));
        // j projected over all i: 0 <= j <= N-1.
        let bj = dim_bounds(&t, 1, 0).unwrap();
        assert_eq!(bj.eval_range(&[], &[10]), Some((0, 9)));
    }

    #[test]
    fn context_bounds_depend_on_outer_dims() {
        let t = triangle();
        // Bounds of j with i as context: 0 <= j <= i.
        let bj = dim_bounds(&t, 1, 1).unwrap();
        assert_eq!(bj.eval_range(&[5], &[10]), Some((0, 5)));
        assert_eq!(bj.eval_range(&[0], &[10]), Some((0, 0)));
    }

    #[test]
    fn divisor_bounds_use_floor_and_ceil() {
        // { i : 2i >= 3, 3i <= 10 } -> i in [ceil(3/2), floor(10/3)] = [2, 3].
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![2, -3]),
                Constraint::ineq(vec![-3, 10]),
            ],
        );
        let b = dim_bounds(&p, 0, 0).unwrap();
        assert_eq!(b.eval_range(&[], &[]), Some((2, 3)));
    }

    #[test]
    fn unbounded_direction_reports_empty_terms() {
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![Constraint::ineq(vec![1, 0])], // i >= 0, no upper bound
        );
        let b = dim_bounds(&p, 0, 0).unwrap();
        assert!(!b.lower.is_unbounded());
        assert!(b.upper.is_unbounded());
        assert_eq!(b.eval_range(&[], &[]), None);
    }

    #[test]
    fn affine_form_display() {
        let f = AffineForm {
            coeffs: vec![1, -2, 3].into(),
            div: 1,
        };
        assert_eq!(f.display(&["i".into()], &["N".into()]), "i - 2*N + 3");
        let g = AffineForm {
            coeffs: vec![1, 0, -1].into(),
            div: 2,
        };
        assert_eq!(g.display(&["i".into()], &["N".into()]), "(i - 1)/2");
        assert!(AffineForm::constant(1, 1, 7).is_constant());
        assert!(!f.is_constant());
    }

    #[test]
    fn cascade_matches_per_dim_bounds() {
        let t = triangle();
        let cascade = bound_cascade(&t).unwrap();
        assert_eq!(cascade.len(), 2);
        for (d, b) in cascade.iter().enumerate() {
            let direct = dim_bounds(&t, d, d).unwrap();
            // Same evaluated ranges at several contexts/params (the
            // term lists may differ in representation).
            for n in [1i64, 5, 10] {
                for i in 0..n {
                    let ctx = &[i][..d.min(1)];
                    assert_eq!(
                        b.eval_range(ctx, &[n]),
                        direct.eval_range(ctx, &[n]),
                        "dim {d}, ctx {ctx:?}, N={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_param_bounds_matches_per_dim() {
        let t = triangle();
        let all = all_param_bounds(&t).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].eval_range(&[], &[4]), Some((0, 3)));
    }
}
