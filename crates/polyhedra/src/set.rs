//! [`Polyhedron`]: a conjunction of affine constraints over a named
//! space, with exact Fourier–Motzkin elimination.
//!
//! This is the workhorse type of the crate. Elimination substitutes
//! through equalities where possible (exact over the integers when the
//! pivot coefficient is ±1) and falls back to classic Fourier–Motzkin
//! pairing on inequalities (the rational shadow; see the crate-level
//! exactness notes).

use crate::constraint::{Constraint, ConstraintKind};
use crate::space::Space;
use crate::{PolyError, Result};
use polymem_linalg::gcd::gcd_i64;
use std::fmt;

/// A polyhedron: `{ x : A(x, q, 1) >= 0, B(x, q, 1) = 0 }` over the
/// dims `x` and parameters `q` of its [`Space`].
#[derive(Clone, PartialEq, Eq)]
pub struct Polyhedron {
    space: Space,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The universe (no constraints) over a space.
    pub fn universe(space: Space) -> Polyhedron {
        Polyhedron {
            space,
            constraints: Vec::new(),
        }
    }

    /// Build from a space and constraint rows. Rows must have
    /// `space.n_cols()` columns.
    pub fn new(space: Space, constraints: Vec<Constraint>) -> Polyhedron {
        for c in &constraints {
            assert_eq!(
                c.len(),
                space.n_cols(),
                "constraint width {} does not match space {:?}",
                c.len(),
                space
            );
        }
        let mut p = Polyhedron { space, constraints };
        p.simplify();
        p
    }

    /// An explicitly empty polyhedron over a space.
    pub fn empty(space: Space) -> Polyhedron {
        let n = space.n_cols();
        let mut row = vec![0i64; n];
        row[n - 1] = -1; // -1 >= 0 : unsatisfiable
        Polyhedron {
            space,
            constraints: vec![Constraint::ineq(row)],
        }
    }

    /// The space this polyhedron lives in.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of set dimensions.
    pub fn n_dims(&self) -> usize {
        self.space.n_dims()
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.space.n_params()
    }

    /// Add one constraint (re-simplifies).
    pub fn add_constraint(&mut self, c: Constraint) {
        assert_eq!(c.len(), self.space.n_cols());
        self.constraints.push(c);
        self.simplify();
    }

    /// Intersection of two polyhedra over same-shape spaces (names from
    /// `self` win).
    pub fn intersect(&self, other: &Polyhedron) -> Result<Polyhedron> {
        if !self.space.same_shape(&other.space) {
            return Err(PolyError::SpaceMismatch { op: "intersect" });
        }
        let mut cs = self.constraints.clone();
        cs.extend(other.constraints.iter().cloned());
        Ok(Polyhedron::new(self.space.clone(), cs))
    }

    /// Membership test for a concrete point.
    pub fn contains(&self, x: &[i64], q: &[i64]) -> bool {
        debug_assert_eq!(x.len(), self.n_dims());
        debug_assert_eq!(q.len(), self.n_params());
        self.constraints.iter().all(|c| c.satisfied(x, q))
    }

    /// Syntactic + local-semantic cleanup: normalise rows, drop
    /// duplicates and trivially-true rows, fold opposite inequality
    /// pairs into equalities, keep only the tightest of rows sharing a
    /// variable part, and detect trivial unsatisfiability.
    fn simplify(&mut self) {
        use std::collections::HashMap;
        let ncols = self.space.n_cols();
        let mut eqs: Vec<Constraint> = Vec::new();
        // Tightest constant per inequality variable-part.
        let mut ineqs: HashMap<Vec<i64>, i64> = HashMap::new();
        let mut unsat = false;
        for c in &mut self.constraints {
            c.normalize();
        }
        for c in &self.constraints {
            match c.constant_verdict() {
                Some(true) => continue,
                Some(false) => {
                    unsat = true;
                    break;
                }
                None => {}
            }
            match c.kind {
                ConstraintKind::Eq => {
                    if !eqs.contains(c) {
                        eqs.push(c.clone());
                    }
                }
                ConstraintKind::Ineq => {
                    let var_part: Vec<i64> = c.coeffs[..ncols - 1].to_vec();
                    let k = c.constant();
                    ineqs
                        .entry(var_part)
                        .and_modify(|old| *old = (*old).min(k))
                        .or_insert(k);
                }
            }
        }
        if unsat {
            *self = Polyhedron::empty(self.space.clone());
            return;
        }
        // Fold e >= 0 and -e >= 0 (allowing the tightened constants to
        // meet exactly) into equalities; detect e >= a, -e >= -b with
        // a > b as unsatisfiable.
        let mut out: Vec<Constraint> = eqs;
        let mut consumed: Vec<Vec<i64>> = Vec::new();
        let keys: Vec<Vec<i64>> = ineqs.keys().cloned().collect();
        for vp in &keys {
            if consumed.contains(vp) {
                continue;
            }
            let neg: Vec<i64> = vp.iter().map(|&c| -c).collect();
            if let (Some(&k), Some(&nk)) = (ineqs.get(vp), ineqs.get(&neg)) {
                if vp != &neg {
                    // vp·x >= -k and vp·x <= nk ; empty if -k > nk.
                    if -k > nk {
                        *self = Polyhedron::empty(self.space.clone());
                        return;
                    }
                    if -k == nk {
                        let mut row = vp.clone();
                        row.push(k);
                        out.push(Constraint::eq(row));
                        consumed.push(vp.clone());
                        consumed.push(neg);
                        continue;
                    }
                }
            }
        }
        for (vp, k) in ineqs {
            if consumed.contains(&vp) {
                continue;
            }
            let mut row = vp;
            row.push(k);
            out.push(Constraint::ineq(row));
        }
        // Deterministic order keeps Debug output and tests stable.
        out.sort_by(|a, b| (a.kind as u8, &a.coeffs).cmp(&(b.kind as u8, &b.coeffs)));
        self.constraints = out;
    }

    /// True iff the polyhedron is syntactically the canonical empty set
    /// (cheap check; for a semantic test use [`Polyhedron::is_empty`]).
    pub fn is_obviously_empty(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| c.constant_verdict() == Some(false))
    }

    /// Eliminate one set dimension (Fourier–Motzkin with equality
    /// substitution). The resulting polyhedron has `n_dims - 1` dims.
    pub fn eliminate_dim(&self, dim: usize) -> Result<Polyhedron> {
        let n = self.n_dims();
        if dim >= n {
            return Err(PolyError::BadDim { dim, n_dims: n });
        }
        let new_space = self.space.drop_dims(&[dim]);
        if self.is_obviously_empty() {
            return Ok(Polyhedron::empty(new_space));
        }

        // Prefer substitution through an equality with the smallest
        // |coefficient| on `dim` (|1| is exact over the integers).
        let pivot = self
            .constraints
            .iter()
            .filter(|c| c.kind == ConstraintKind::Eq && c.coeff(dim) != 0)
            .min_by_key(|c| c.coeff(dim).abs());
        if let Some(e) = pivot {
            let a = e.coeff(dim);
            let mut rows = Vec::with_capacity(self.constraints.len());
            for c in &self.constraints {
                if std::ptr::eq(c, e) {
                    continue;
                }
                let b = c.coeff(dim);
                let combined = if b == 0 {
                    c.clone()
                } else {
                    // |a|*c - sign(a)*b*e has zero coefficient on dim.
                    // Multiplying an inequality by |a| > 0 is sound.
                    let g = gcd_i64(a, b);
                    let (ca, cb) = ((a / g).abs(), b / g * (a / g).signum());
                    let mut row = Vec::with_capacity(c.len());
                    for j in 0..c.len() {
                        let v = (c.coeff(j) as i128) * (ca as i128)
                            - (e.coeff(j) as i128) * (cb as i128);
                        row.push(
                            i64::try_from(v).map_err(|_| polymem_linalg::LinalgError::Overflow)?,
                        );
                    }
                    match c.kind {
                        ConstraintKind::Ineq => Constraint::ineq(row),
                        ConstraintKind::Eq => Constraint::eq(row),
                    }
                };
                rows.push(drop_col(&combined, dim));
            }
            return Ok(Polyhedron::new(new_space, rows));
        }

        // Classic FM pairing on inequalities. Equalities without the
        // dim pass through unchanged (any equality *with* the dim would
        // have been a pivot above).
        let mut lower: Vec<&Constraint> = Vec::new();
        let mut upper: Vec<&Constraint> = Vec::new();
        let mut rest: Vec<Constraint> = Vec::new();
        for c in &self.constraints {
            let a = c.coeff(dim);
            if a == 0 {
                rest.push(drop_col(c, dim));
            } else if a > 0 {
                lower.push(c); // a·dim >= -(rest) : lower bound
            } else {
                upper.push(c); // (-a)·dim <= rest : upper bound
            }
        }
        for lo in &lower {
            for up in &upper {
                let a = lo.coeff(dim); // > 0
                let b = -up.coeff(dim); // > 0
                let g = gcd_i64(a, b);
                let (ma, mb) = (b / g, a / g);
                let mut row = Vec::with_capacity(lo.len());
                for j in 0..lo.len() {
                    let v =
                        (lo.coeff(j) as i128) * (ma as i128) + (up.coeff(j) as i128) * (mb as i128);
                    row.push(i64::try_from(v).map_err(|_| polymem_linalg::LinalgError::Overflow)?);
                }
                rest.push(drop_col(&Constraint::ineq(row), dim));
            }
        }
        Ok(Polyhedron::new(new_space, rest))
    }

    /// Eliminate several dims (highest index first so indices stay valid).
    pub fn eliminate_dims(&self, dims: &[usize]) -> Result<Polyhedron> {
        let mut sorted = dims.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut p = self.clone();
        for &d in sorted.iter().rev() {
            p = p.eliminate_dim(d)?;
        }
        Ok(p)
    }

    /// Project onto the given dims (kept in their current relative
    /// order); all other dims are eliminated.
    pub fn project_onto(&self, keep: &[usize]) -> Result<Polyhedron> {
        let drop: Vec<usize> = (0..self.n_dims()).filter(|d| !keep.contains(d)).collect();
        self.eliminate_dims(&drop)
    }

    /// Eliminate every dim **and** every parameter, leaving only
    /// constant rows: used as the final step of emptiness testing.
    fn eliminate_everything(&self) -> Result<Polyhedron> {
        // Temporarily view params as dims so FM can eliminate them.
        let total = self.n_dims() + self.n_params();
        let wide = Space::anon(total, 0);
        let mut p = Polyhedron {
            space: wide,
            constraints: self.constraints.clone(),
        };
        for d in (0..total).rev() {
            p = p.eliminate_dim(d)?;
        }
        Ok(p)
    }

    /// Semantic emptiness over the *rationals*, existentially in the
    /// parameters: returns `true` iff no rational `(x, q)` satisfies
    /// the system. (Combined with the per-equality gcd test this is
    /// exact for the program class in scope; see crate docs.)
    pub fn is_empty(&self) -> Result<bool> {
        if self.is_obviously_empty() {
            return Ok(true);
        }
        // Integer infeasibility shortcut: an equality whose variable
        // gcd does not divide its constant has no integer solution.
        for c in &self.constraints {
            if c.kind == ConstraintKind::Eq {
                let n = c.len();
                let g = polymem_linalg::gcd::gcd_slice(&c.coeffs[..n - 1]);
                if g != 0 && c.constant() % g != 0 {
                    return Ok(true);
                }
            }
        }
        let residue = self.eliminate_everything()?;
        Ok(residue.is_obviously_empty())
    }

    /// Emptiness given a *context* polyhedron over the parameters
    /// (a 0-dim polyhedron whose params match): `true` iff no point
    /// exists for any parameter value admitted by the context.
    pub fn is_empty_in(&self, context: &Polyhedron) -> Result<Polyhedron> {
        // Returns the residual param-only system for reuse; see
        // `is_empty_in_context` for the boolean wrapper.
        if context.n_dims() != 0 || context.n_params() != self.n_params() {
            return Err(PolyError::SpaceMismatch { op: "is_empty_in" });
        }
        let dims: Vec<usize> = (0..self.n_dims()).collect();
        let shadow = self.eliminate_dims(&dims)?;
        let mut cs = shadow.constraints;
        cs.extend(context.constraints.iter().cloned());
        Ok(Polyhedron::new(
            Space::new(Vec::<String>::new(), self.space.params().to_vec()),
            cs,
        ))
    }

    /// Boolean form of [`Polyhedron::is_empty_in`].
    pub fn is_empty_in_context(&self, context: &Polyhedron) -> Result<bool> {
        self.is_empty_in(context)?.is_empty()
    }

    /// Substitute concrete parameter values, producing a parameter-free
    /// polyhedron over the same dims.
    pub fn substitute_params(&self, values: &[i64]) -> Result<Polyhedron> {
        if values.len() != self.n_params() {
            return Err(PolyError::SpaceMismatch {
                op: "substitute_params",
            });
        }
        let n = self.n_dims();
        let space = Space::new(self.space.dims().to_vec(), Vec::<String>::new());
        let rows = self
            .constraints
            .iter()
            .map(|c| {
                let mut row: Vec<i64> = c.coeffs[..n].to_vec();
                let mut k = c.constant() as i128;
                for (j, &v) in values.iter().enumerate() {
                    k += (c.coeff(n + j) as i128) * (v as i128);
                }
                row.push(i64::try_from(k).map_err(|_| polymem_linalg::LinalgError::Overflow)?);
                Ok(match c.kind {
                    ConstraintKind::Ineq => Constraint::ineq(row),
                    ConstraintKind::Eq => Constraint::eq(row),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Polyhedron::new(space, rows))
    }

    /// Explicit equalities plus equalities implied by opposite
    /// inequality pairs (`simplify` already folds the latter, so this
    /// just filters).
    pub fn equalities(&self) -> Vec<&Constraint> {
        self.constraints
            .iter()
            .filter(|c| c.kind == ConstraintKind::Eq)
            .collect()
    }

    /// All constraints as inequalities (equalities split in two).
    pub fn as_ineq_rows(&self) -> Vec<Constraint> {
        self.constraints.iter().flat_map(|c| c.as_ineqs()).collect()
    }

    /// Insert a fresh dimension at position `pos` (coefficient 0 in all
    /// existing rows), named `name`.
    pub fn insert_dim(&self, pos: usize, name: &str) -> Polyhedron {
        assert!(pos <= self.n_dims());
        let mut dims = self.space.dims().to_vec();
        dims.insert(pos, name.to_string());
        let space = Space::new(dims, self.space.params().to_vec());
        let rows = self
            .constraints
            .iter()
            .map(|c| {
                let mut row = c.coeffs.0.clone();
                row.insert(pos, 0);
                Constraint {
                    coeffs: row.into(),
                    kind: c.kind,
                }
            })
            .collect();
        Polyhedron {
            space,
            constraints: rows,
        }
    }

    /// Rename the space (shape must match).
    pub fn with_space(&self, space: Space) -> Polyhedron {
        assert!(self.space.same_shape(&space));
        Polyhedron {
            space,
            constraints: self.constraints.clone(),
        }
    }

    /// The lexicographically smallest integer point of a
    /// non-parametric bounded polytope, or `None` if empty.
    pub fn sample_point(&self) -> Result<Option<Vec<i64>>> {
        if self.n_params() != 0 {
            return Err(PolyError::Unbounded);
        }
        if self.is_empty()? {
            return Ok(None);
        }
        let n = self.n_dims();
        let mut point = Vec::with_capacity(n);
        let mut ctx = self.clone();
        for d in 0..n {
            // Bounds of dim d with dims 0..d already fixed: fix them
            // via equalities and project.
            let b = crate::bounds::dim_bounds(&ctx, d, d)?;
            let Some((lo, hi)) = b.eval_range(&point, &[]) else {
                return Err(PolyError::Unbounded);
            };
            // The rational shadow can overshoot; scan for the first
            // integer-feasible value (certified by a non-empty rest).
            let mut found = None;
            for v in lo..=hi {
                let mut c = ctx.clone();
                let mut row = vec![0i64; c.space().n_cols()];
                row[d] = 1;
                row[c.space().n_cols() - 1] = -v;
                c.add_constraint(Constraint::eq(row));
                if !c.is_empty()? {
                    found = Some((v, c));
                    break;
                }
            }
            match found {
                Some((v, c)) => {
                    point.push(v);
                    ctx = c;
                }
                None => return Ok(None),
            }
        }
        Ok(Some(point))
    }

    /// Remove constraints implied by the others (exact, via rational
    /// feasibility): a row `c >= 0` is redundant iff the system with
    /// `c` replaced by its negation `c <= -1` is empty. Quadratic in
    /// the constraint count — use after eliminations that are known to
    /// pile up rows (`simplify` alone is only syntactic).
    pub fn remove_redundant(&self) -> Result<Polyhedron> {
        let mut rows = self.as_ineq_rows();
        // Re-fold equalities afterwards via Polyhedron::new/simplify.
        let mut k = 0;
        while k < rows.len() {
            if rows.len() == 1 {
                break;
            }
            let mut probe: Vec<Constraint> = rows
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != k)
                .map(|(_, c)| c.clone())
                .collect();
            probe.push(rows[k].negate_ineq());
            let test = Polyhedron {
                space: self.space.clone(),
                constraints: probe,
            };
            if test.is_empty()? {
                rows.remove(k);
            } else {
                k += 1;
            }
        }
        Ok(Polyhedron::new(self.space.clone(), rows))
    }

    /// Reorder dims according to `order` (new dim `i` = old dim
    /// `order[i]`); `order` must be a permutation of `0..n_dims`.
    pub fn permute_dims(&self, order: &[usize]) -> Polyhedron {
        assert_eq!(order.len(), self.n_dims());
        let space = self.space.keep_dims(order);
        let n = self.n_dims();
        let rows = self
            .constraints
            .iter()
            .map(|c| {
                let mut row: Vec<i64> = Vec::with_capacity(c.len());
                for &o in order {
                    row.push(c.coeff(o));
                }
                row.extend_from_slice(&c.coeffs[n..]);
                Constraint {
                    coeffs: row.into(),
                    kind: c.kind,
                }
            })
            .collect();
        Polyhedron {
            space,
            constraints: rows,
        }
    }
}

/// Remove column `dim` from a constraint row.
fn drop_col(c: &Constraint, dim: usize) -> Constraint {
    let mut row = c.coeffs.0.clone();
    row.remove(dim);
    match c.kind {
        ConstraintKind::Ineq => Constraint::ineq(row),
        ConstraintKind::Eq => Constraint::eq(row),
    }
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:?} : {{", self.space)?;
        for c in &self.constraints {
            writeln!(f, "  {}", c.display(self.space.dims(), self.space.params()))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `{ (i, j) : 0 <= i <= N-1, 0 <= j <= i }` over param N.
    fn triangle() -> Polyhedron {
        let space = Space::new(["i", "j"], ["N"]);
        Polyhedron::new(
            space,
            vec![
                Constraint::ineq(vec![1, 0, 0, 0]),   // i >= 0
                Constraint::ineq(vec![-1, 0, 1, -1]), // i <= N-1
                Constraint::ineq(vec![0, 1, 0, 0]),   // j >= 0
                Constraint::ineq(vec![1, -1, 0, 0]),  // j <= i
            ],
        )
    }

    #[test]
    fn membership() {
        let t = triangle();
        assert!(t.contains(&[3, 2], &[10]));
        assert!(t.contains(&[0, 0], &[1]));
        assert!(!t.contains(&[3, 4], &[10]));
        assert!(!t.contains(&[10, 0], &[10]));
    }

    #[test]
    fn eliminate_inner_dim_gives_outer_bounds() {
        let t = triangle();
        // Eliminating j leaves 0 <= i <= N-1.
        let p = t.eliminate_dim(1).unwrap();
        assert_eq!(p.n_dims(), 1);
        assert!(p.contains(&[0], &[5]));
        assert!(p.contains(&[4], &[5]));
        assert!(!p.contains(&[5], &[5]));
        assert!(!p.contains(&[-1], &[5]));
    }

    #[test]
    fn eliminate_outer_dim_gives_inner_shadow() {
        let t = triangle();
        // Eliminating i: j >= 0 and j <= i <= N-1 so j <= N-1.
        let p = t.eliminate_dim(0).unwrap();
        assert!(p.contains(&[0], &[5]));
        assert!(p.contains(&[4], &[5]));
        assert!(!p.contains(&[5], &[5]));
    }

    #[test]
    fn equality_substitution_is_used() {
        // { (i, j) : j = 2i + 1, 0 <= i <= 4 }; eliminating j leaves
        // 0 <= i <= 4 exactly, via the equality pivot.
        let space = Space::new(["i", "j"], Vec::<String>::new());
        let p = Polyhedron::new(
            space,
            vec![
                Constraint::eq(vec![2, -1, 1]),
                Constraint::ineq(vec![1, 0, 0]),
                Constraint::ineq(vec![-1, 0, 4]),
            ],
        );
        let q = p.eliminate_dim(1).unwrap();
        for i in 0..=4 {
            assert!(q.contains(&[i], &[]));
        }
        assert!(!q.contains(&[5], &[]));
        // Eliminating i through the equality (coefficient 2) produces
        // the rational shadow of j: 1 <= j <= 9.
        let r = p.eliminate_dim(0).unwrap();
        assert!(r.contains(&[1], &[]));
        assert!(r.contains(&[9], &[]));
        assert!(!r.contains(&[0], &[]));
        assert!(!r.contains(&[10], &[]));
    }

    #[test]
    fn emptiness() {
        let t = triangle();
        assert!(!t.is_empty().unwrap());
        // Adding j >= i + 1 contradicts j <= i.
        let mut e = t.clone();
        e.add_constraint(Constraint::ineq(vec![-1, 1, 0, -1]));
        assert!(e.is_empty().unwrap());
        // Explicitly empty.
        assert!(Polyhedron::empty(Space::anon(2, 0)).is_empty().unwrap());
        // Universe is non-empty.
        assert!(!Polyhedron::universe(Space::anon(2, 1)).is_empty().unwrap());
    }

    #[test]
    fn gcd_integer_emptiness() {
        // 2i = 1 has no integer solution (but has a rational one).
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![Constraint::eq(vec![2, -1])],
        );
        assert!(p.is_empty().unwrap());
    }

    #[test]
    fn opposite_ineqs_fold_to_equality() {
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, -3]), // i >= 3
                Constraint::ineq(vec![-1, 3]), // i <= 3
            ],
        );
        assert_eq!(p.equalities().len(), 1);
        assert!(p.contains(&[3], &[]));
        assert!(!p.contains(&[2], &[]));
    }

    #[test]
    fn contradictory_bounds_detected_in_simplify() {
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, -5]), // i >= 5
                Constraint::ineq(vec![-1, 3]), // i <= 3
            ],
        );
        assert!(p.is_obviously_empty());
    }

    #[test]
    fn duplicate_and_dominated_rows_are_merged() {
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0]),
                Constraint::ineq(vec![1, 0]),
                Constraint::ineq(vec![1, 5]), // weaker than i >= 0
                Constraint::ineq(vec![-1, 9]),
            ],
        );
        assert_eq!(p.constraints().len(), 2);
    }

    #[test]
    fn substitute_params_closes_the_set() {
        let t = triangle();
        let c = t.substitute_params(&[4]).unwrap();
        assert_eq!(c.n_params(), 0);
        assert!(c.contains(&[3, 3], &[]));
        assert!(!c.contains(&[4, 0], &[]));
    }

    #[test]
    fn context_emptiness() {
        // { i : 0 <= i <= N - 10 } is empty when N <= 9.
        let p = Polyhedron::new(
            Space::new(["i"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, 0]),
                Constraint::ineq(vec![-1, 1, -10]),
            ],
        );
        let ctx_small = Polyhedron::new(
            Space::new(Vec::<String>::new(), vec!["N".to_string()]),
            vec![Constraint::ineq(vec![-1, 9])], // N <= 9
        );
        let ctx_big = Polyhedron::new(
            Space::new(Vec::<String>::new(), vec!["N".to_string()]),
            vec![Constraint::ineq(vec![1, -100])], // N >= 100
        );
        assert!(p.is_empty_in_context(&ctx_small).unwrap());
        assert!(!p.is_empty_in_context(&ctx_big).unwrap());
    }

    #[test]
    fn insert_and_permute_dims() {
        let t = triangle();
        let w = t.insert_dim(1, "k");
        assert_eq!(w.n_dims(), 3);
        assert!(w.contains(&[3, 99, 2], &[10])); // k unconstrained
        let p = t.permute_dims(&[1, 0]);
        assert!(p.contains(&[2, 3], &[10])); // (j, i) order now
        assert!(!p.contains(&[3, 2], &[10]));
    }

    #[test]
    fn sample_point_is_lexmin() {
        let t = triangle().substitute_params(&[5]).unwrap();
        assert_eq!(t.sample_point().unwrap(), Some(vec![0, 0]));
        // Shifted: { i in [3, 7], j in [i-1, i] } -> (3, 2).
        let p = Polyhedron::new(
            Space::new(["i", "j"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0, -3]),
                Constraint::ineq(vec![-1, 0, 7]),
                Constraint::ineq(vec![-1, 1, 1]),
                Constraint::ineq(vec![1, -1, 0]),
            ],
        );
        assert_eq!(p.sample_point().unwrap(), Some(vec![3, 2]));
        // Empty sets yield None; parametric sets error.
        assert_eq!(
            Polyhedron::empty(Space::anon(2, 0)).sample_point().unwrap(),
            None
        );
        assert!(triangle().sample_point().is_err());
    }

    #[test]
    fn redundancy_removal_is_exact() {
        // x >= 0, x >= -5 (implied), x <= 10, x + y <= 20 with
        // y <= 5 making x + y <= 15 stricter... construct:
        let p = Polyhedron::new(
            Space::new(["x", "y"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0, 0]),    // x >= 0
                Constraint::ineq(vec![1, 0, 5]),    // x >= -5 (implied)
                Constraint::ineq(vec![-1, 0, 10]),  // x <= 10
                Constraint::ineq(vec![0, 1, 0]),    // y >= 0
                Constraint::ineq(vec![0, -1, 5]),   // y <= 5
                Constraint::ineq(vec![-1, -1, 20]), // x + y <= 20 (implied)
            ],
        );
        // `simplify` already merges the two x lower bounds (same var
        // part); the diagonal row needs the semantic test.
        let r = p.remove_redundant().unwrap();
        assert!(r.constraints().len() < p.constraints().len());
        // Same integer set on a grid.
        for x in -2..13 {
            for y in -2..8 {
                assert_eq!(
                    p.contains(&[x, y], &[]),
                    r.contains(&[x, y], &[]),
                    "({x},{y})"
                );
            }
        }
        // The diagonal constraint is gone.
        assert!(r
            .constraints()
            .iter()
            .all(|c| !(c.coeff(0) == -1 && c.coeff(1) == -1)));
    }

    #[test]
    fn redundancy_removal_preserves_triangle_semantics() {
        let t = triangle();
        let r = t.remove_redundant().unwrap();
        // `i >= 0` is implied by `j >= 0 ∧ j <= i` and gets dropped;
        // everything else binds.
        assert_eq!(r.constraints().len(), 3);
        for n in [1i64, 4, 7] {
            for i in -2..(n + 2) {
                for j in -2..(n + 2) {
                    assert_eq!(
                        t.contains(&[i, j], &[n]),
                        r.contains(&[i, j], &[n]),
                        "({i},{j}) N={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn project_onto_keeps_selected_dims() {
        let t = triangle();
        let p = t.project_onto(&[1]).unwrap();
        assert_eq!(p.n_dims(), 1);
        assert_eq!(p.space().dim_name(0), "j");
        assert!(p.contains(&[0], &[5]));
        assert!(!p.contains(&[5], &[5]));
    }
}
