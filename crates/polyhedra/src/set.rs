//! [`Polyhedron`]: a conjunction of affine constraints over a named
//! space, with exact Fourier–Motzkin elimination.
//!
//! This is the workhorse type of the crate. Elimination substitutes
//! through equalities where possible (exact over the integers when the
//! pivot coefficient is ±1) and falls back to classic Fourier–Motzkin
//! pairing on inequalities (the rational shadow; see the crate-level
//! exactness notes).
//!
//! ## Performance shape
//!
//! Multi-dimension elimination ([`Polyhedron::eliminate_dims`]) orders
//! dims greedily by estimated pair blow-up (minimum lower×upper
//! product, equality pivots first), interleaves syntactic pruning after
//! every step (via `simplify`), and fires a *bounded exact prune* —
//! simplex-backed redundancy probes — whenever the row count grows past
//! a threshold. Results are memoized in the content-addressed
//! [`crate::cache`]. Emptiness ([`Polyhedron::is_empty`]) runs a
//! rational phase-1 simplex ([`crate::simplex`]) instead of eliminating
//! every variable; the FM path survives as the overflow fallback and as
//! the `POLYMEM_POLY_CHECK=1` cross-check oracle. Setting naive mode
//! ([`crate::cache::set_naive_mode`] or `POLYMEM_POLY_NAIVE=1`) reverts
//! all of this to the pre-optimization behaviour for benchmarking.

use crate::constraint::{Constraint, ConstraintKind};
use crate::space::Space;
use crate::{cache, simplex, PolyError, Result};
use polymem_linalg::combine_rows_into;
use polymem_linalg::gcd::gcd_i64;
use std::fmt;

/// Row count past which `eliminate_dims` runs a bounded exact prune
/// between elimination steps. The pipeline's systems stay well under
/// this after syntactic pruning, so the exact pass fires only on
/// genuinely blown-up intermediates.
const EXACT_PRUNE_THRESHOLD: usize = 24;

/// Probe budget for one bounded exact prune pass.
const EXACT_PRUNE_BUDGET: usize = 96;

/// Row cap for the rational Fourier–Motzkin feasibility fast path in
/// [`Polyhedron::rows_empty`]. The small sparse systems the pipeline
/// asks about (difference pieces, bound probes) eliminate in a handful
/// of cheap pairings; anything that grows past this cap escalates to
/// the phase-1 simplex, which is immune to FM blow-up.
const FM_FEAS_CAP: usize = 48;

/// A polyhedron: `{ x : A(x, q, 1) >= 0, B(x, q, 1) = 0 }` over the
/// dims `x` and parameters `q` of its [`Space`].
#[derive(Clone, PartialEq, Eq)]
pub struct Polyhedron {
    space: Space,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The universe (no constraints) over a space.
    pub fn universe(space: Space) -> Polyhedron {
        Polyhedron {
            space,
            constraints: Vec::new(),
        }
    }

    /// Build from a space and constraint rows. Rows must have
    /// `space.n_cols()` columns.
    pub fn new(space: Space, constraints: Vec<Constraint>) -> Polyhedron {
        for c in &constraints {
            assert_eq!(
                c.len(),
                space.n_cols(),
                "constraint width {} does not match space {:?}",
                c.len(),
                space
            );
        }
        let mut p = Polyhedron { space, constraints };
        p.simplify();
        p
    }

    /// An explicitly empty polyhedron over a space.
    pub fn empty(space: Space) -> Polyhedron {
        let n = space.n_cols();
        let mut row = vec![0i64; n];
        row[n - 1] = -1; // -1 >= 0 : unsatisfiable
        Polyhedron {
            space,
            constraints: vec![Constraint::ineq(row)],
        }
    }

    /// The space this polyhedron lives in.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of set dimensions.
    pub fn n_dims(&self) -> usize {
        self.space.n_dims()
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.space.n_params()
    }

    /// Add one constraint (re-simplifies).
    pub fn add_constraint(&mut self, c: Constraint) {
        assert_eq!(c.len(), self.space.n_cols());
        self.constraints.push(c);
        self.simplify();
    }

    /// Intersection of two polyhedra over same-shape spaces (names from
    /// `self` win).
    pub fn intersect(&self, other: &Polyhedron) -> Result<Polyhedron> {
        if !self.space.same_shape(&other.space) {
            return Err(PolyError::SpaceMismatch { op: "intersect" });
        }
        let mut cs = self.constraints.clone();
        cs.extend(other.constraints.iter().cloned());
        Ok(Polyhedron::new(self.space.clone(), cs))
    }

    /// Membership test for a concrete point.
    pub fn contains(&self, x: &[i64], q: &[i64]) -> bool {
        debug_assert_eq!(x.len(), self.n_dims());
        debug_assert_eq!(q.len(), self.n_params());
        self.constraints.iter().all(|c| c.satisfied(x, q))
    }

    /// Syntactic + local-semantic cleanup: normalise rows, drop
    /// duplicates and trivially-true rows, fold opposite inequality
    /// pairs into equalities, keep only the tightest of rows sharing a
    /// variable part, and detect trivial unsatisfiability.
    fn simplify(&mut self) {
        use std::collections::{HashMap, HashSet};
        let ncols = self.space.n_cols();
        // Equality rows deduped by hashed content (rows are normalized
        // first, so equal sets hash equal) — O(n) instead of the O(n²)
        // `Vec::contains` scan this loop used to do.
        let mut eq_seen: HashSet<Vec<i64>> = HashSet::new();
        let mut eqs: Vec<Constraint> = Vec::new();
        // Tightest constant per inequality variable-part.
        let mut ineqs: HashMap<Vec<i64>, i64> = HashMap::new();
        let mut unsat = false;
        for c in &mut self.constraints {
            c.normalize();
        }
        for c in &self.constraints {
            match c.constant_verdict() {
                Some(true) => continue,
                Some(false) => {
                    unsat = true;
                    break;
                }
                None => {}
            }
            match c.kind {
                ConstraintKind::Eq => {
                    if eq_seen.insert(c.coeffs.0.clone()) {
                        eqs.push(c.clone());
                    }
                }
                ConstraintKind::Ineq => {
                    let var_part: Vec<i64> = c.coeffs[..ncols - 1].to_vec();
                    let k = c.constant();
                    ineqs
                        .entry(var_part)
                        .and_modify(|old| *old = (*old).min(k))
                        .or_insert(k);
                }
            }
        }
        if unsat {
            *self = Polyhedron::empty(self.space.clone());
            return;
        }
        // Fold e >= 0 and -e >= 0 (allowing the tightened constants to
        // meet exactly) into equalities; detect e >= a, -e >= -b with
        // a > b as unsatisfiable.
        let mut out: Vec<Constraint> = eqs;
        let mut consumed: HashSet<Vec<i64>> = HashSet::new();
        let keys: Vec<Vec<i64>> = ineqs.keys().cloned().collect();
        for vp in &keys {
            if consumed.contains(vp) {
                continue;
            }
            let neg: Vec<i64> = vp.iter().map(|&c| -c).collect();
            if let (Some(&k), Some(&nk)) = (ineqs.get(vp), ineqs.get(&neg)) {
                if vp != &neg {
                    // vp·x >= -k and vp·x <= nk ; empty if -k > nk.
                    if -k > nk {
                        *self = Polyhedron::empty(self.space.clone());
                        return;
                    }
                    if -k == nk {
                        let mut row = vp.clone();
                        row.push(k);
                        out.push(Constraint::eq(row));
                        consumed.insert(vp.clone());
                        consumed.insert(neg);
                        continue;
                    }
                }
            }
        }
        for (vp, k) in ineqs {
            if consumed.contains(&vp) {
                continue;
            }
            let mut row = vp;
            row.push(k);
            out.push(Constraint::ineq(row));
        }
        // Deterministic order keeps Debug output and tests stable.
        out.sort_by(|a, b| (a.kind as u8, &a.coeffs).cmp(&(b.kind as u8, &b.coeffs)));
        self.constraints = out;
    }

    /// True iff the polyhedron is syntactically the canonical empty set
    /// (cheap check; for a semantic test use [`Polyhedron::is_empty`]).
    pub fn is_obviously_empty(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| c.constant_verdict() == Some(false))
    }

    /// Eliminate one set dimension (Fourier–Motzkin with equality
    /// substitution). The resulting polyhedron has `n_dims - 1` dims.
    pub fn eliminate_dim(&self, dim: usize) -> Result<Polyhedron> {
        let _timer = cache::CoreTimer::enter();
        let n = self.n_dims();
        if dim >= n {
            return Err(PolyError::BadDim { dim, n_dims: n });
        }
        let new_space = self.space.drop_dims(&[dim]);
        if self.is_obviously_empty() {
            return Ok(Polyhedron::empty(new_space));
        }

        // Prefer substitution through an equality with the smallest
        // |coefficient| on `dim` (|1| is exact over the integers).
        let pivot = self
            .constraints
            .iter()
            .filter(|c| c.kind == ConstraintKind::Eq && c.coeff(dim) != 0)
            .min_by_key(|c| c.coeff(dim).abs());
        if let Some(e) = pivot {
            let a = e.coeff(dim);
            let mut rows = Vec::with_capacity(self.constraints.len());
            let mut scratch: Vec<i64> = Vec::new();
            for c in &self.constraints {
                if std::ptr::eq(c, e) {
                    continue;
                }
                let b = c.coeff(dim);
                let combined = if b == 0 {
                    c.clone()
                } else {
                    // |a|*c - sign(a)*b*e has zero coefficient on dim.
                    // Multiplying an inequality by |a| > 0 is sound.
                    let g = gcd_i64(a, b);
                    let (ca, cb) = ((a / g).abs(), b / g * (a / g).signum());
                    combine_rows_into(ca, &c.coeffs, -cb, &e.coeffs, &mut scratch)?;
                    match c.kind {
                        ConstraintKind::Ineq => Constraint::ineq(scratch.clone()),
                        ConstraintKind::Eq => Constraint::eq(scratch.clone()),
                    }
                };
                rows.push(drop_col(&combined, dim));
            }
            return Ok(Polyhedron::new(new_space, rows));
        }

        // Classic FM pairing on inequalities. Equalities without the
        // dim pass through unchanged (any equality *with* the dim would
        // have been a pivot above).
        let mut lower: Vec<&Constraint> = Vec::new();
        let mut upper: Vec<&Constraint> = Vec::new();
        let mut rest: Vec<Constraint> = Vec::new();
        for c in &self.constraints {
            let a = c.coeff(dim);
            if a == 0 {
                rest.push(drop_col(c, dim));
            } else if a > 0 {
                lower.push(c); // a·dim >= -(rest) : lower bound
            } else {
                upper.push(c); // (-a)·dim <= rest : upper bound
            }
        }
        cache::count_fm_generated(lower.len() * upper.len());
        let mut scratch: Vec<i64> = Vec::new();
        for lo in &lower {
            for up in &upper {
                let a = lo.coeff(dim); // > 0
                let b = -up.coeff(dim); // > 0
                let g = gcd_i64(a, b);
                let (ma, mb) = (b / g, a / g);
                combine_rows_into(ma, &lo.coeffs, mb, &up.coeffs, &mut scratch)?;
                rest.push(drop_col(&Constraint::ineq(scratch.clone()), dim));
            }
        }
        let candidates = rest.len();
        let p = Polyhedron::new(new_space, rest);
        cache::count_fm_pruned(candidates.saturating_sub(p.constraints.len()));
        Ok(p)
    }

    /// Eliminate several dims. The fast path picks the elimination
    /// order greedily (equality pivots first, then minimum lower×upper
    /// pair product — the classic blow-up estimate), prunes
    /// syntactically after every step, runs a bounded exact prune when
    /// rows pile up, and memoizes the result by content in
    /// [`crate::cache`]. Naive mode falls back to fixed
    /// highest-index-first order with no pruning.
    pub fn eliminate_dims(&self, dims: &[usize]) -> Result<Polyhedron> {
        let _timer = cache::CoreTimer::enter();
        let mut sorted = dims.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if cache::naive_mode() {
            let mut p = self.clone();
            for &d in sorted.iter().rev() {
                p = p.eliminate_dim(d)?;
            }
            return Ok(p);
        }
        if sorted.is_empty() {
            return Ok(self.clone());
        }
        cache::project_memo(self, &sorted, || self.eliminate_dims_greedy(&sorted))
    }

    /// Greedy-ordered elimination with interleaved pruning (the fast
    /// path behind [`Polyhedron::eliminate_dims`]).
    fn eliminate_dims_greedy(&self, sorted: &[usize]) -> Result<Polyhedron> {
        let mut remaining: Vec<usize> = sorted.to_vec();
        let mut p = self.clone();
        while !remaining.is_empty() {
            let mut best = 0usize;
            let mut best_cost = u64::MAX;
            for (ri, &d) in remaining.iter().enumerate() {
                let (mut lo, mut up) = (0u64, 0u64);
                let mut has_eq = false;
                for c in &p.constraints {
                    let a = c.coeff(d);
                    if a == 0 {
                        continue;
                    }
                    if c.kind == ConstraintKind::Eq {
                        has_eq = true;
                        break;
                    }
                    if a > 0 {
                        lo += 1;
                    } else {
                        up += 1;
                    }
                }
                // Equality substitution never grows the system; FM
                // pairing replaces lo+up rows with lo·up.
                let cost = if has_eq { 0 } else { lo * up };
                if cost < best_cost {
                    best_cost = cost;
                    best = ri;
                }
            }
            let d = remaining.remove(best);
            p = p.eliminate_dim(d)?;
            for r in remaining.iter_mut() {
                if *r > d {
                    *r -= 1;
                }
            }
            if p.constraints.len() > EXACT_PRUNE_THRESHOLD {
                p = p.prune_exact_bounded(EXACT_PRUNE_BUDGET)?;
            }
        }
        Ok(p)
    }

    /// Project onto the given dims (kept in their current relative
    /// order); all other dims are eliminated.
    pub fn project_onto(&self, keep: &[usize]) -> Result<Polyhedron> {
        let _timer = cache::CoreTimer::enter();
        let n = self.n_dims();
        let mut keep_mask = vec![false; n];
        for &d in keep {
            if d < n {
                keep_mask[d] = true;
            }
        }
        let drop: Vec<usize> = (0..n).filter(|&d| !keep_mask[d]).collect();
        self.eliminate_dims(&drop)
    }

    /// Rational Fourier–Motzkin feasibility with a row cap: greedy
    /// variable ordering, equality pivots first, gcd row reduction —
    /// but *no* integer tightening, so the verdict is exactly rational
    /// (in)feasibility, interchangeable with the phase-1 simplex
    /// verdict. Returns `None` when an intermediate system grows past
    /// `cap` rows or an exact product overflows; the caller escalates
    /// to simplex. On the small sparse systems the pipeline asks about
    /// most, this is an order of magnitude cheaper than a tableau
    /// solve.
    fn rows_feasible_fm_capped(rows: &[&Constraint], n_vars: usize, cap: usize) -> Option<bool> {
        if rows.len() > cap {
            return None;
        }
        fn gcd128(a: i128, b: i128) -> i128 {
            let (mut a, mut b) = (a.abs(), b.abs());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        // Row = (is_eq, var coeffs .. constant), mirroring `Constraint`.
        let mut sys: Vec<(bool, Vec<i128>)> = rows
            .iter()
            .map(|c| {
                let r = (0..n_vars)
                    .map(|i| c.coeff(i) as i128)
                    .chain(std::iter::once(c.constant() as i128))
                    .collect();
                (c.kind == ConstraintKind::Eq, r)
            })
            .collect();
        // Combine `a_mult * tgt + b_mult * src` into a fresh row,
        // gcd-reduced (rationally exact for both kinds since the
        // constant participates in the reduction).
        let combine =
            |tgt: &[i128], src: &[i128], a_mult: i128, b_mult: i128| -> Option<Vec<i128>> {
                let mut out = Vec::with_capacity(tgt.len());
                let mut g: i128 = 0;
                for (t, s) in tgt.iter().zip(src) {
                    let v = a_mult
                        .checked_mul(*t)?
                        .checked_add(b_mult.checked_mul(*s)?)?;
                    g = gcd128(g, v);
                    out.push(v);
                }
                if g > 1 {
                    for v in &mut out {
                        *v /= g;
                    }
                }
                Some(out)
            };
        loop {
            // Constant-row verdicts; satisfied rows are dropped.
            let mut i = 0;
            while i < sys.len() {
                let (eq, r) = &sys[i];
                if r[..n_vars].iter().all(|&a| a == 0) {
                    let c = r[n_vars];
                    if (*eq && c != 0) || (!*eq && c < 0) {
                        return Some(false);
                    }
                    sys.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            // Cheapest variable still present: equality pivots are
            // free, otherwise the FM pairing product (as in
            // `eliminate_dims`).
            let mut best = usize::MAX;
            let mut best_cost = u64::MAX;
            for v in 0..n_vars {
                let (mut lo, mut up) = (0u64, 0u64);
                let mut present = false;
                let mut has_eq = false;
                for (eq, r) in &sys {
                    if r[v] == 0 {
                        continue;
                    }
                    present = true;
                    if *eq {
                        has_eq = true;
                        break;
                    }
                    if r[v] > 0 {
                        lo += 1;
                    } else {
                        up += 1;
                    }
                }
                if !present {
                    continue;
                }
                let cost = if has_eq { 0 } else { lo * up };
                if cost < best_cost {
                    best_cost = cost;
                    best = v;
                }
            }
            if best == usize::MAX {
                // Every remaining row was a satisfied constant: feasible.
                return Some(true);
            }
            let v = best;
            // Eliminate `v`: substitute through an equality pivot when
            // one exists, otherwise pair lower against upper bounds.
            let pivot = sys
                .iter()
                .position(|(eq, r)| *eq && r[v] != 0)
                .map(|i| sys.swap_remove(i));
            if let Some((_, e)) = pivot {
                let a = e[v];
                for row in sys.iter_mut() {
                    let b = row.1[v];
                    if b == 0 {
                        continue;
                    }
                    let g = gcd128(a, b);
                    // |a/g| * row - sign(a/g) * (b/g) * e zeroes column v
                    // with a positive multiplier on the inequality row.
                    let ca = (a / g).abs();
                    let cb = -(b / g) * (a / g).signum();
                    row.1 = combine(&row.1, &e, ca, cb)?;
                }
            } else {
                let (mut lows, mut ups, mut rest) = (Vec::new(), Vec::new(), Vec::new());
                for row in sys.drain(..) {
                    match row.1[v].signum() {
                        1 => lows.push(row.1),
                        -1 => ups.push(row.1),
                        _ => rest.push(row),
                    }
                }
                if !lows.is_empty() && !ups.is_empty() {
                    if lows.len() * ups.len() + rest.len() > cap {
                        return None;
                    }
                    for l in &lows {
                        for u in &ups {
                            let a = l[v];
                            let b = u[v]; // < 0
                            let g = gcd128(a, b);
                            rest.push((false, combine(l, u, (-b) / g, a / g)?));
                        }
                    }
                }
                sys = rest;
            }
            if sys.len() > cap {
                return None;
            }
        }
    }

    /// Rational emptiness of a constraint system over this
    /// polyhedron's variables: cheap verdicts (constant rows, the
    /// integer gcd shortcut on equalities), then capped rational
    /// Fourier–Motzkin, escalating to phase-1 simplex when the system
    /// blows up; full integer-tightening FM is the naive-mode path and
    /// overflow fallback.
    pub(crate) fn rows_empty(&self, rows: &[Constraint]) -> Result<bool> {
        let refs: Vec<&Constraint> = rows.iter().collect();
        self.rows_empty_refs(&refs)
    }

    /// Borrowed-row variant of [`rows_empty`]: callers assembling a
    /// candidate system from pieces (e.g. the difference construction)
    /// can test emptiness without materializing an owned row vector —
    /// the FM fast path copies into its own scratch anyway. Owned rows
    /// are only built on the rare escalation paths.
    pub(crate) fn rows_empty_refs(&self, rows: &[&Constraint]) -> Result<bool> {
        for c in rows {
            if c.constant_verdict() == Some(false) {
                return Ok(true);
            }
            // Integer infeasibility shortcut: an equality whose
            // variable gcd does not divide its constant has no integer
            // solution.
            if c.kind == ConstraintKind::Eq {
                let n = c.len();
                let g = polymem_linalg::gcd::gcd_slice(&c.coeffs[..n - 1]);
                if g != 0 && c.constant() % g != 0 {
                    return Ok(true);
                }
            }
        }
        let n_vars = self.n_dims() + self.n_params();
        if !cache::naive_mode() {
            if let Some(feasible) = Self::rows_feasible_fm_capped(rows, n_vars, FM_FEAS_CAP) {
                let empty = !feasible;
                if cache::cross_check() {
                    // Rational emptiness implies FM emptiness (the
                    // naive path additionally integer-tightens, so it
                    // proves at least as much).
                    let owned: Vec<Constraint> = rows.iter().map(|&c| c.clone()).collect();
                    let fm = self.rows_empty_fm(&owned)?;
                    assert!(
                        !empty || fm,
                        "unsound: rational FM claims empty but tightened FM \
                         finds the system satisfiable ({} rows over {} vars)",
                        rows.len(),
                        n_vars
                    );
                }
                return Ok(empty);
            }
            // Escalation: the system grew past the FM cap (or
            // overflowed); hand it to the phase-1 simplex, which does
            // bounded-size pivoting regardless of density.
            let owned: Vec<Constraint> = rows.iter().map(|&c| c.clone()).collect();
            if let Ok(feasible) = simplex::feasible(&owned, n_vars) {
                let empty = !feasible;
                if cache::cross_check() {
                    // One-directional invariant: rational emptiness
                    // must imply FM emptiness. The converse can fail
                    // legitimately — FM integer-tightens constants at
                    // every elimination, so it proves *integer*
                    // emptiness of some rationally-feasible systems
                    // (see the `simplex` module docs).
                    let fm = self.rows_empty_fm(&owned)?;
                    assert!(
                        !empty || fm,
                        "unsound: simplex claims empty but FM finds the \
                         system satisfiable ({} rows over {} vars)",
                        rows.len(),
                        n_vars
                    );
                }
                return Ok(empty);
            }
            // Overflow in the exact tableau: fall through to FM.
        }
        let owned: Vec<Constraint> = rows.iter().map(|&c| c.clone()).collect();
        self.rows_empty_fm(&owned)
    }

    /// The pre-optimization emptiness oracle: eliminate every dim *and*
    /// every parameter in fixed reverse order, then inspect the
    /// constant residue.
    fn rows_empty_fm(&self, rows: &[Constraint]) -> Result<bool> {
        // Temporarily view params as dims so FM can eliminate them.
        let total = self.n_dims() + self.n_params();
        let wide = Space::anon(total, 0);
        let mut p = Polyhedron {
            space: wide,
            constraints: rows.to_vec(),
        };
        for d in (0..total).rev() {
            p = p.eliminate_dim(d)?;
        }
        Ok(p.is_obviously_empty())
    }

    /// Semantic emptiness over the *rationals*, existentially in the
    /// parameters: returns `true` iff no rational `(x, q)` satisfies
    /// the system. (Combined with the per-equality gcd test this is
    /// exact for the program class in scope; see crate docs.)
    pub fn is_empty(&self) -> Result<bool> {
        let _timer = cache::CoreTimer::enter();
        if self.is_obviously_empty() {
            return Ok(true);
        }
        cache::empty_memo(&self.constraints, || self.rows_empty(&self.constraints))
    }

    /// Emptiness given a *context* polyhedron over the parameters
    /// (a 0-dim polyhedron whose params match): `true` iff no point
    /// exists for any parameter value admitted by the context.
    pub fn is_empty_in(&self, context: &Polyhedron) -> Result<Polyhedron> {
        // Returns the residual param-only system for reuse; see
        // `is_empty_in_context` for the boolean wrapper.
        if context.n_dims() != 0 || context.n_params() != self.n_params() {
            return Err(PolyError::SpaceMismatch { op: "is_empty_in" });
        }
        let dims: Vec<usize> = (0..self.n_dims()).collect();
        let shadow = self.eliminate_dims(&dims)?;
        let mut cs = shadow.constraints;
        cs.extend(context.constraints.iter().cloned());
        Ok(Polyhedron::new(
            Space::new(Vec::<String>::new(), self.space.params().to_vec()),
            cs,
        ))
    }

    /// Boolean form of [`Polyhedron::is_empty_in`].
    pub fn is_empty_in_context(&self, context: &Polyhedron) -> Result<bool> {
        self.is_empty_in(context)?.is_empty()
    }

    /// Substitute concrete parameter values, producing a parameter-free
    /// polyhedron over the same dims.
    pub fn substitute_params(&self, values: &[i64]) -> Result<Polyhedron> {
        if values.len() != self.n_params() {
            return Err(PolyError::SpaceMismatch {
                op: "substitute_params",
            });
        }
        let n = self.n_dims();
        let space = Space::new(self.space.dims().to_vec(), Vec::<String>::new());
        let rows = self
            .constraints
            .iter()
            .map(|c| {
                let mut row: Vec<i64> = c.coeffs[..n].to_vec();
                let mut k = c.constant() as i128;
                for (j, &v) in values.iter().enumerate() {
                    k += (c.coeff(n + j) as i128) * (v as i128);
                }
                row.push(i64::try_from(k).map_err(|_| polymem_linalg::LinalgError::Overflow)?);
                Ok(match c.kind {
                    ConstraintKind::Ineq => Constraint::ineq(row),
                    ConstraintKind::Eq => Constraint::eq(row),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Polyhedron::new(space, rows))
    }

    /// Explicit equalities plus equalities implied by opposite
    /// inequality pairs (`simplify` already folds the latter, so this
    /// just filters).
    pub fn equalities(&self) -> Vec<&Constraint> {
        self.constraints
            .iter()
            .filter(|c| c.kind == ConstraintKind::Eq)
            .collect()
    }

    /// All constraints as inequalities (equalities split in two).
    pub fn as_ineq_rows(&self) -> Vec<Constraint> {
        self.constraints.iter().flat_map(|c| c.as_ineqs()).collect()
    }

    /// Insert a fresh dimension at position `pos` (coefficient 0 in all
    /// existing rows), named `name`.
    pub fn insert_dim(&self, pos: usize, name: &str) -> Polyhedron {
        assert!(pos <= self.n_dims());
        let mut dims = self.space.dims().to_vec();
        dims.insert(pos, name.to_string());
        let space = Space::new(dims, self.space.params().to_vec());
        let rows = self
            .constraints
            .iter()
            .map(|c| {
                let mut row = c.coeffs.0.clone();
                row.insert(pos, 0);
                Constraint {
                    coeffs: row.into(),
                    kind: c.kind,
                }
            })
            .collect();
        Polyhedron {
            space,
            constraints: rows,
        }
    }

    /// Rename the space (shape must match).
    pub fn with_space(&self, space: Space) -> Polyhedron {
        assert!(self.space.same_shape(&space));
        Polyhedron {
            space,
            constraints: self.constraints.clone(),
        }
    }

    /// The lexicographically smallest integer point of a
    /// non-parametric bounded polytope, or `None` if empty.
    pub fn sample_point(&self) -> Result<Option<Vec<i64>>> {
        let _timer = cache::CoreTimer::enter();
        if self.n_params() != 0 {
            return Err(PolyError::Unbounded);
        }
        if self.is_empty()? {
            return Ok(None);
        }
        let n = self.n_dims();
        let mut point = Vec::with_capacity(n);
        let mut ctx = self.clone();
        for d in 0..n {
            // Bounds of dim d with dims 0..d already fixed: fix them
            // via equalities and project.
            let b = crate::bounds::dim_bounds(&ctx, d, d)?;
            let Some((lo, hi)) = b.eval_range(&point, &[]) else {
                return Err(PolyError::Unbounded);
            };
            // The rational shadow can overshoot; scan for the first
            // integer-feasible value (certified by a non-empty rest).
            let mut found = None;
            for v in lo..=hi {
                let mut c = ctx.clone();
                let mut row = vec![0i64; c.space().n_cols()];
                row[d] = 1;
                row[c.space().n_cols() - 1] = -v;
                c.add_constraint(Constraint::eq(row));
                if !c.is_empty()? {
                    found = Some((v, c));
                    break;
                }
            }
            match found {
                Some((v, c)) => {
                    point.push(v);
                    ctx = c;
                }
                None => return Ok(None),
            }
        }
        Ok(Some(point))
    }

    /// Remove constraints implied by the others (exact, via rational
    /// feasibility): a row `c >= 0` is redundant iff the system with
    /// `c` replaced by its negation `c <= -1` is empty. Quadratic in
    /// the constraint count — use after eliminations that are known to
    /// pile up rows (`simplify` alone is only syntactic).
    pub fn remove_redundant(&self) -> Result<Polyhedron> {
        let _timer = cache::CoreTimer::enter();
        let rows = self.prune_rows(self.as_ineq_rows(), usize::MAX)?;
        // Re-fold equalities afterwards via Polyhedron::new/simplify.
        Ok(Polyhedron::new(self.space.clone(), rows))
    }

    /// Bounded exact prune used between elimination steps: same probe
    /// as [`Polyhedron::remove_redundant`] but capped at `max_probes`
    /// feasibility tests, so it stays cheap even on blown-up systems.
    fn prune_exact_bounded(&self, max_probes: usize) -> Result<Polyhedron> {
        let rows = self.prune_rows(self.as_ineq_rows(), max_probes)?;
        Ok(Polyhedron::new(self.space.clone(), rows))
    }

    /// Shared redundancy-probe loop. One probe buffer is reused across
    /// iterations: the candidate row is swapped for its negation in
    /// place and restored (or removed) after the test — no per-probe
    /// clone of the whole system.
    fn prune_rows(&self, mut rows: Vec<Constraint>, max_probes: usize) -> Result<Vec<Constraint>> {
        let before = rows.len();
        let mut probe = rows.clone();
        let mut probes = 0usize;
        let mut k = 0;
        while k < rows.len() && rows.len() > 1 && probes < max_probes {
            probe[k] = rows[k].negate_ineq();
            probes += 1;
            if self.rows_empty(&probe)? {
                rows.remove(k);
                probe.remove(k);
            } else {
                probe[k] = rows[k].clone();
                k += 1;
            }
        }
        cache::count_fm_pruned(before - rows.len());
        Ok(rows)
    }

    /// Reorder dims according to `order` (new dim `i` = old dim
    /// `order[i]`); `order` must be a permutation of `0..n_dims`.
    pub fn permute_dims(&self, order: &[usize]) -> Polyhedron {
        assert_eq!(order.len(), self.n_dims());
        let space = self.space.keep_dims(order);
        let n = self.n_dims();
        let rows = self
            .constraints
            .iter()
            .map(|c| {
                let mut row: Vec<i64> = Vec::with_capacity(c.len());
                for &o in order {
                    row.push(c.coeff(o));
                }
                row.extend_from_slice(&c.coeffs[n..]);
                Constraint {
                    coeffs: row.into(),
                    kind: c.kind,
                }
            })
            .collect();
        Polyhedron {
            space,
            constraints: rows,
        }
    }
}

/// Remove column `dim` from a constraint row.
fn drop_col(c: &Constraint, dim: usize) -> Constraint {
    let mut row = c.coeffs.0.clone();
    row.remove(dim);
    match c.kind {
        ConstraintKind::Ineq => Constraint::ineq(row),
        ConstraintKind::Eq => Constraint::eq(row),
    }
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:?} : {{", self.space)?;
        for c in &self.constraints {
            writeln!(f, "  {}", c.display(self.space.dims(), self.space.params()))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `{ (i, j) : 0 <= i <= N-1, 0 <= j <= i }` over param N.
    fn triangle() -> Polyhedron {
        let space = Space::new(["i", "j"], ["N"]);
        Polyhedron::new(
            space,
            vec![
                Constraint::ineq(vec![1, 0, 0, 0]),   // i >= 0
                Constraint::ineq(vec![-1, 0, 1, -1]), // i <= N-1
                Constraint::ineq(vec![0, 1, 0, 0]),   // j >= 0
                Constraint::ineq(vec![1, -1, 0, 0]),  // j <= i
            ],
        )
    }

    #[test]
    fn membership() {
        let t = triangle();
        assert!(t.contains(&[3, 2], &[10]));
        assert!(t.contains(&[0, 0], &[1]));
        assert!(!t.contains(&[3, 4], &[10]));
        assert!(!t.contains(&[10, 0], &[10]));
    }

    #[test]
    fn eliminate_inner_dim_gives_outer_bounds() {
        let t = triangle();
        // Eliminating j leaves 0 <= i <= N-1.
        let p = t.eliminate_dim(1).unwrap();
        assert_eq!(p.n_dims(), 1);
        assert!(p.contains(&[0], &[5]));
        assert!(p.contains(&[4], &[5]));
        assert!(!p.contains(&[5], &[5]));
        assert!(!p.contains(&[-1], &[5]));
    }

    #[test]
    fn eliminate_outer_dim_gives_inner_shadow() {
        let t = triangle();
        // Eliminating i: j >= 0 and j <= i <= N-1 so j <= N-1.
        let p = t.eliminate_dim(0).unwrap();
        assert!(p.contains(&[0], &[5]));
        assert!(p.contains(&[4], &[5]));
        assert!(!p.contains(&[5], &[5]));
    }

    #[test]
    fn equality_substitution_is_used() {
        // { (i, j) : j = 2i + 1, 0 <= i <= 4 }; eliminating j leaves
        // 0 <= i <= 4 exactly, via the equality pivot.
        let space = Space::new(["i", "j"], Vec::<String>::new());
        let p = Polyhedron::new(
            space,
            vec![
                Constraint::eq(vec![2, -1, 1]),
                Constraint::ineq(vec![1, 0, 0]),
                Constraint::ineq(vec![-1, 0, 4]),
            ],
        );
        let q = p.eliminate_dim(1).unwrap();
        for i in 0..=4 {
            assert!(q.contains(&[i], &[]));
        }
        assert!(!q.contains(&[5], &[]));
        // Eliminating i through the equality (coefficient 2) produces
        // the rational shadow of j: 1 <= j <= 9.
        let r = p.eliminate_dim(0).unwrap();
        assert!(r.contains(&[1], &[]));
        assert!(r.contains(&[9], &[]));
        assert!(!r.contains(&[0], &[]));
        assert!(!r.contains(&[10], &[]));
    }

    #[test]
    fn emptiness() {
        let t = triangle();
        assert!(!t.is_empty().unwrap());
        // Adding j >= i + 1 contradicts j <= i.
        let mut e = t.clone();
        e.add_constraint(Constraint::ineq(vec![-1, 1, 0, -1]));
        assert!(e.is_empty().unwrap());
        // Explicitly empty.
        assert!(Polyhedron::empty(Space::anon(2, 0)).is_empty().unwrap());
        // Universe is non-empty.
        assert!(!Polyhedron::universe(Space::anon(2, 1)).is_empty().unwrap());
    }

    #[test]
    fn gcd_integer_emptiness() {
        // 2i = 1 has no integer solution (but has a rational one).
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![Constraint::eq(vec![2, -1])],
        );
        assert!(p.is_empty().unwrap());
    }

    #[test]
    fn opposite_ineqs_fold_to_equality() {
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, -3]), // i >= 3
                Constraint::ineq(vec![-1, 3]), // i <= 3
            ],
        );
        assert_eq!(p.equalities().len(), 1);
        assert!(p.contains(&[3], &[]));
        assert!(!p.contains(&[2], &[]));
    }

    #[test]
    fn contradictory_bounds_detected_in_simplify() {
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, -5]), // i >= 5
                Constraint::ineq(vec![-1, 3]), // i <= 3
            ],
        );
        assert!(p.is_obviously_empty());
    }

    #[test]
    fn duplicate_and_dominated_rows_are_merged() {
        let p = Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0]),
                Constraint::ineq(vec![1, 0]),
                Constraint::ineq(vec![1, 5]), // weaker than i >= 0
                Constraint::ineq(vec![-1, 9]),
            ],
        );
        assert_eq!(p.constraints().len(), 2);
    }

    #[test]
    fn substitute_params_closes_the_set() {
        let t = triangle();
        let c = t.substitute_params(&[4]).unwrap();
        assert_eq!(c.n_params(), 0);
        assert!(c.contains(&[3, 3], &[]));
        assert!(!c.contains(&[4, 0], &[]));
    }

    #[test]
    fn context_emptiness() {
        // { i : 0 <= i <= N - 10 } is empty when N <= 9.
        let p = Polyhedron::new(
            Space::new(["i"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, 0]),
                Constraint::ineq(vec![-1, 1, -10]),
            ],
        );
        let ctx_small = Polyhedron::new(
            Space::new(Vec::<String>::new(), vec!["N".to_string()]),
            vec![Constraint::ineq(vec![-1, 9])], // N <= 9
        );
        let ctx_big = Polyhedron::new(
            Space::new(Vec::<String>::new(), vec!["N".to_string()]),
            vec![Constraint::ineq(vec![1, -100])], // N >= 100
        );
        assert!(p.is_empty_in_context(&ctx_small).unwrap());
        assert!(!p.is_empty_in_context(&ctx_big).unwrap());
    }

    #[test]
    fn insert_and_permute_dims() {
        let t = triangle();
        let w = t.insert_dim(1, "k");
        assert_eq!(w.n_dims(), 3);
        assert!(w.contains(&[3, 99, 2], &[10])); // k unconstrained
        let p = t.permute_dims(&[1, 0]);
        assert!(p.contains(&[2, 3], &[10])); // (j, i) order now
        assert!(!p.contains(&[3, 2], &[10]));
    }

    #[test]
    fn sample_point_is_lexmin() {
        let t = triangle().substitute_params(&[5]).unwrap();
        assert_eq!(t.sample_point().unwrap(), Some(vec![0, 0]));
        // Shifted: { i in [3, 7], j in [i-1, i] } -> (3, 2).
        let p = Polyhedron::new(
            Space::new(["i", "j"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0, -3]),
                Constraint::ineq(vec![-1, 0, 7]),
                Constraint::ineq(vec![-1, 1, 1]),
                Constraint::ineq(vec![1, -1, 0]),
            ],
        );
        assert_eq!(p.sample_point().unwrap(), Some(vec![3, 2]));
        // Empty sets yield None; parametric sets error.
        assert_eq!(
            Polyhedron::empty(Space::anon(2, 0)).sample_point().unwrap(),
            None
        );
        assert!(triangle().sample_point().is_err());
    }

    #[test]
    fn redundancy_removal_is_exact() {
        // x >= 0, x >= -5 (implied), x <= 10, x + y <= 20 with
        // y <= 5 making x + y <= 15 stricter... construct:
        let p = Polyhedron::new(
            Space::new(["x", "y"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0, 0]),    // x >= 0
                Constraint::ineq(vec![1, 0, 5]),    // x >= -5 (implied)
                Constraint::ineq(vec![-1, 0, 10]),  // x <= 10
                Constraint::ineq(vec![0, 1, 0]),    // y >= 0
                Constraint::ineq(vec![0, -1, 5]),   // y <= 5
                Constraint::ineq(vec![-1, -1, 20]), // x + y <= 20 (implied)
            ],
        );
        // `simplify` already merges the two x lower bounds (same var
        // part); the diagonal row needs the semantic test.
        let r = p.remove_redundant().unwrap();
        assert!(r.constraints().len() < p.constraints().len());
        // Same integer set on a grid.
        for x in -2..13 {
            for y in -2..8 {
                assert_eq!(
                    p.contains(&[x, y], &[]),
                    r.contains(&[x, y], &[]),
                    "({x},{y})"
                );
            }
        }
        // The diagonal constraint is gone.
        assert!(r
            .constraints()
            .iter()
            .all(|c| !(c.coeff(0) == -1 && c.coeff(1) == -1)));
    }

    #[test]
    fn redundancy_removal_preserves_triangle_semantics() {
        let t = triangle();
        let r = t.remove_redundant().unwrap();
        // `i >= 0` is implied by `j >= 0 ∧ j <= i` and gets dropped;
        // everything else binds.
        assert_eq!(r.constraints().len(), 3);
        for n in [1i64, 4, 7] {
            for i in -2..(n + 2) {
                for j in -2..(n + 2) {
                    assert_eq!(
                        t.contains(&[i, j], &[n]),
                        r.contains(&[i, j], &[n]),
                        "({i},{j}) N={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn project_onto_keeps_selected_dims() {
        let t = triangle();
        let p = t.project_onto(&[1]).unwrap();
        assert_eq!(p.n_dims(), 1);
        assert_eq!(p.space().dim_name(0), "j");
        assert!(p.contains(&[0], &[5]));
        assert!(!p.contains(&[5], &[5]));
    }
}
