//! Unions of polyhedra over a common space.
//!
//! The set of data spaces accessed by an array's references in a block
//! (`DS^A_rw` in the paper) is such a union. [`PolyUnion`] keeps the
//! members explicit (the framework partitions and scans them
//! individually) and provides the derived forms the pipeline needs:
//! a disjoint decomposition for single-visit scanning and exact
//! counting, and membership/emptiness tests.

use crate::count::{count_or_estimate, count_points};
use crate::diff::difference_all;
use crate::set::Polyhedron;
use crate::{PolyError, Result};

/// A finite union of polyhedra over a shared space shape.
#[derive(Clone, Debug)]
pub struct PolyUnion {
    members: Vec<Polyhedron>,
}

impl PolyUnion {
    /// An empty union (no members).
    pub fn new() -> PolyUnion {
        PolyUnion {
            members: Vec::new(),
        }
    }

    /// Build from members; all must share a space shape.
    pub fn from_members(members: Vec<Polyhedron>) -> Result<PolyUnion> {
        if let Some(first) = members.first() {
            if !members.iter().all(|m| m.space().same_shape(first.space())) {
                return Err(PolyError::SpaceMismatch { op: "PolyUnion" });
            }
        }
        Ok(PolyUnion { members })
    }

    /// Add one member.
    pub fn push(&mut self, p: Polyhedron) -> Result<()> {
        if let Some(first) = self.members.first() {
            if !first.space().same_shape(p.space()) {
                return Err(PolyError::SpaceMismatch {
                    op: "PolyUnion::push",
                });
            }
        }
        self.members.push(p);
        Ok(())
    }

    /// The member polyhedra.
    pub fn members(&self) -> &[Polyhedron] {
        &self.members
    }

    /// Number of members.
    // `is_empty` below is *semantic* emptiness (fallible); the
    // structural counterpart of `len` is `is_empty_union`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff there are no members.
    pub fn is_empty_union(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership in any member.
    pub fn contains(&self, x: &[i64], q: &[i64]) -> bool {
        self.members.iter().any(|m| m.contains(x, q))
    }

    /// Semantic emptiness (all members empty).
    pub fn is_empty(&self) -> Result<bool> {
        for m in &self.members {
            if !m.is_empty()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Decompose into pairwise-disjoint polyhedra covering exactly the
    /// union: `D_1 = P_1`, `D_k = P_k \ (P_1 ∪ … ∪ P_{k-1})`.
    ///
    /// This is what makes generated move-in/move-out code load/store
    /// each element exactly once even when reference data spaces
    /// overlap (§3.1.3 of the paper).
    pub fn disjoint_pieces(&self) -> Result<Vec<Polyhedron>> {
        let _timer = crate::cache::CoreTimer::enter();
        let mut out: Vec<Polyhedron> = Vec::new();
        let mut seen: Vec<Polyhedron> = Vec::new();
        for m in &self.members {
            if m.is_empty()? {
                continue;
            }
            if seen.is_empty() {
                out.push(m.clone());
            } else {
                out.extend(difference_all(m, &seen)?);
            }
            seen.push(m.clone());
        }
        Ok(out)
    }

    /// Exact number of integer points in the union (non-parametric).
    pub fn count(&self, budget: u64) -> Result<u64> {
        let mut total = 0u64;
        for piece in self.disjoint_pieces()? {
            total = total.saturating_add(count_points(&piece, budget)?);
        }
        Ok(total)
    }

    /// Count with bounding-box fallback per piece; the boolean reports
    /// whether every piece was counted exactly.
    pub fn count_or_estimate(&self, budget: u64) -> Result<(u64, bool)> {
        let mut total = 0u64;
        let mut all_exact = true;
        for piece in self.disjoint_pieces()? {
            let (n, exact) = count_or_estimate(&piece, budget)?;
            total = total.saturating_add(n);
            all_exact &= exact;
        }
        Ok((total, all_exact))
    }

    /// A convex polyhedron enclosing the union, tighter than the
    /// bounding box: for every constraint direction `d` appearing in
    /// any member (plus the axis directions), the result keeps
    /// `d·x ≥ min over members` of that direction's support. This is
    /// the template-polyhedra approximation of the paper's
    /// `ConvexHull(DS)` — exact whenever the true hull's facet normals
    /// all occur among the members' constraint normals (e.g. unions of
    /// translates of one shape, which is what tiled data spaces are).
    ///
    /// Parametric members are supported: supports are affine forms of
    /// the parameters when the projection yields a single bound term;
    /// directions without such a bound in some member are dropped
    /// (they would be unbounded for the union).
    pub fn convex_approx(&self) -> Result<Option<Polyhedron>> {
        use crate::constraint::Constraint;
        let members: Vec<&Polyhedron> = {
            let mut v = Vec::new();
            for m in &self.members {
                if !m.is_empty()? {
                    v.push(m);
                }
            }
            v
        };
        let Some(first) = members.first() else {
            return Ok(None);
        };
        let n = first.n_dims();
        let n_params = first.n_params();
        // Collect candidate directions (dim coefficients only).
        let mut dirs: Vec<Vec<i64>> = Vec::new();
        let mut add_dir = |d: Vec<i64>| {
            if d.iter().any(|&x| x != 0) && !dirs.contains(&d) {
                dirs.push(d);
            }
        };
        for m in &members {
            for c in m.as_ineq_rows() {
                add_dir(c.coeffs[..n].to_vec());
            }
        }
        for k in 0..n {
            let mut e = vec![0i64; n];
            e[k] = 1;
            add_dir(e.clone());
            e[k] = -1;
            add_dir(e);
        }
        // For each direction d, find per member the best affine lower
        // bound of d·x (introduce t = d·x, project onto t).
        let mut rows: Vec<Constraint> = Vec::new();
        'dirs: for d in &dirs {
            let mut worst: Option<Vec<i64>> = None; // over [params..., 1]
            for m in &members {
                // Augment with t as a new leading dim: t - d·x = 0.
                let aug = m.insert_dim(0, "_t");
                let mut eq = vec![0i64; aug.space().n_cols()];
                eq[0] = 1;
                for (k, &dk) in d.iter().enumerate() {
                    eq[1 + k] = -dk;
                }
                let mut aug = aug;
                aug.add_constraint(Constraint::eq(eq));
                let b = crate::bounds::dim_bounds(&aug, 0, 0)?;
                // Lower bound of t as a single affine form of params.
                if b.lower.terms.len() != 1 || b.lower.terms[0].div != 1 {
                    continue 'dirs;
                }
                let cand: Vec<i64> = b.lower.terms[0].coeffs.to_vec();
                worst = Some(match worst {
                    None => cand,
                    Some(w) => {
                        // Keep the weaker (smaller) bound; comparable
                        // only when linear parts match — otherwise we
                        // cannot order them symbolically, drop the dir.
                        if w[..n_params] != cand[..n_params] {
                            continue 'dirs;
                        }
                        if cand[n_params] < w[n_params] {
                            cand
                        } else {
                            w
                        }
                    }
                });
            }
            if let Some(w) = worst {
                // d·x - w(params) >= 0.
                let mut row = vec![0i64; n + n_params + 1];
                row[..n].copy_from_slice(d);
                for (k, &c) in w.iter().enumerate() {
                    row[n + k] = -c;
                }
                rows.push(Constraint::ineq(row));
            }
        }
        Ok(Some(Polyhedron::new(first.space().clone(), rows)))
    }

    /// Sum of pairwise intersection volumes between distinct members —
    /// the "overlapped regions" volume of Algorithm 1's constant-reuse
    /// test. (Non-parametric members only.)
    pub fn pairwise_overlap_volume(&self, budget: u64) -> Result<u64> {
        let mut total = 0u64;
        for i in 0..self.members.len() {
            for j in (i + 1)..self.members.len() {
                let inter = self.members[i].intersect(&self.members[j])?;
                let (n, _) = count_or_estimate(&inter, budget)?;
                total = total.saturating_add(n);
            }
        }
        Ok(total)
    }
}

impl Default for PolyUnion {
    fn default() -> Self {
        PolyUnion::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::space::Space;

    fn interval(lo: i64, hi: i64) -> Polyhedron {
        Polyhedron::new(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, -lo]),
                Constraint::ineq(vec![-1, hi]),
            ],
        )
    }

    #[test]
    fn union_membership_and_count() {
        let u = PolyUnion::from_members(vec![interval(0, 4), interval(3, 8)]).unwrap();
        assert!(u.contains(&[0], &[]));
        assert!(u.contains(&[8], &[]));
        assert!(!u.contains(&[9], &[]));
        // |[0,8]| = 9 despite the overlap [3,4].
        assert_eq!(u.count(1000).unwrap(), 9);
    }

    #[test]
    fn disjoint_pieces_cover_without_overlap() {
        let u = PolyUnion::from_members(vec![interval(0, 5), interval(3, 9), interval(20, 21)])
            .unwrap();
        let pieces = u.disjoint_pieces().unwrap();
        for v in -2..25 {
            let n = pieces.iter().filter(|p| p.contains(&[v], &[])).count();
            assert_eq!(n as i64, i64::from(u.contains(&[v], &[])), "at {v}");
        }
    }

    #[test]
    fn pairwise_overlap_volume_counts_intersections() {
        let u = PolyUnion::from_members(vec![interval(0, 5), interval(4, 9)]).unwrap();
        // Intersection [4,5] has 2 points.
        assert_eq!(u.pairwise_overlap_volume(100).unwrap(), 2);
        let d = PolyUnion::from_members(vec![interval(0, 2), interval(5, 9)]).unwrap();
        assert_eq!(d.pairwise_overlap_volume(100).unwrap(), 0);
    }

    #[test]
    fn convex_approx_encloses_and_tightens() {
        // Two diagonal segments: the box would admit the whole square;
        // the template approximation keeps the diagonal band.
        let strip = |c: i64| {
            Polyhedron::new(
                Space::new(["x", "y"], Vec::<String>::new()),
                vec![
                    Constraint::ineq(vec![1, 0, 0]),
                    Constraint::ineq(vec![-1, 0, 6]),
                    Constraint::eq(vec![1, -1, c]), // y = x + c
                ],
            )
        };
        let u = PolyUnion::from_members(vec![strip(0), strip(2)]).unwrap();
        let hull = u.convex_approx().unwrap().unwrap();
        // Contains both members.
        for m in u.members() {
            let mut pts = Vec::new();
            crate::count::enumerate_points(m, 1000, &mut |p| pts.push(p.to_vec())).unwrap();
            for p in pts {
                assert!(hull.contains(&p, &[]), "{p:?} lost");
            }
        }
        // Tighter than the box: (6, 0) is in the bounding box of the
        // union (x in [0,6], y in [0,8]) but not in the diagonal band.
        assert!(!hull.contains(&[6, 0], &[]));
        // Band interior points between the strips are included (it is
        // a convex over-approximation of the union).
        assert!(hull.contains(&[3, 4], &[]));
    }

    #[test]
    fn convex_approx_of_translated_boxes_is_exact_hull_box() {
        let u = PolyUnion::from_members(vec![interval(0, 3), interval(10, 12)]).unwrap();
        let hull = u.convex_approx().unwrap().unwrap();
        for v in -2..15 {
            assert_eq!(hull.contains(&[v], &[]), (0..=12).contains(&v), "{v}");
        }
        // Empty unions yield None.
        assert!(PolyUnion::new().convex_approx().unwrap().is_none());
    }

    #[test]
    fn empty_union_behaviour() {
        let u = PolyUnion::new();
        assert!(u.is_empty_union());
        assert!(u.is_empty().unwrap());
        assert_eq!(u.count(10).unwrap(), 0);
        assert!(u.disjoint_pieces().unwrap().is_empty());
    }

    #[test]
    fn mismatched_spaces_rejected() {
        let a = interval(0, 1);
        let b = Polyhedron::universe(Space::new(["x", "y"], Vec::<String>::new()));
        assert!(PolyUnion::from_members(vec![a.clone(), b.clone()]).is_err());
        let mut u = PolyUnion::from_members(vec![a]).unwrap();
        assert!(u.push(b).is_err());
    }

    #[test]
    fn empty_members_are_skipped_in_decomposition() {
        let u = PolyUnion::from_members(vec![
            Polyhedron::empty(Space::new(["i"], Vec::<String>::new())),
            interval(1, 2),
        ])
        .unwrap();
        let pieces = u.disjoint_pieces().unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(u.count(10).unwrap(), 2);
    }
}
