//! Polyhedral sets and operations for the polymem framework.
//!
//! This crate is polymem's replacement for the Polylib + PIP toolchain
//! used by the paper (Baskaran et al., PPoPP 2008): it provides exact
//! integer/rational polyhedra over named spaces and every operation the
//! data-management and tiling pipelines need:
//!
//! * [`Polyhedron`] — conjunctions of affine equalities/inequalities
//!   over `n_dims` set dimensions and `n_params` symbolic parameters;
//! * **Fourier–Motzkin elimination** ([`Polyhedron::eliminate_dim`],
//!   [`Polyhedron::project_onto`]) with redundancy pruning;
//! * **affine images** ([`map::AffineMap::image`]) — the data space
//!   `F·I` of an iteration polytope under an access function;
//! * **parametric bounds** ([`bounds`]) — per-dimension lower/upper
//!   bounds as max/min of affine forms of parameters (the role PIP
//!   plays in the paper);
//! * **set algebra** — intersection, union containers ([`union::PolyUnion`]),
//!   polyhedral difference ([`diff`]) used for single-visit scanning;
//! * **integer point enumeration & counting** ([`count`]) used for the
//!   overlap-volume test of Algorithm 1;
//! * **dependence polyhedra** ([`dep`]) for tiling legality and the
//!   §3.1.4 copy-in/copy-out minimisation.
//!
//! ## Exactness notes
//!
//! Projection uses rational Fourier–Motzkin: the result is the rational
//! shadow, which for the affine programs in scope (access coefficients
//! on eliminated variables being 0/±1 after equality substitution) is
//! exactly the integer projection. For more exotic coefficients the
//! shadow is a safe *over-approximation*: data movement may copy a few
//! extra elements, never too few — the same containment guarantee the
//! paper's bounding-box allocation provides.

pub mod bounds;
pub mod cache;
pub mod constraint;
pub mod count;
pub mod dep;
pub mod diff;
pub mod map;
pub mod set;
pub mod simplex;
pub mod space;
pub mod union;

pub use bounds::{AffineForm, BoundList, DimBounds};
pub use cache::{poly_core_reset, poly_core_stats, set_naive_mode, PolyCoreStats};
pub use constraint::{Constraint, ConstraintKind};
pub use dep::{DepKind, Dependence, DirSign};
pub use map::AffineMap;
pub use set::Polyhedron;
pub use space::Space;
pub use union::PolyUnion;

use std::fmt;

/// Errors surfaced by polyhedral operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyError {
    /// Exact arithmetic overflowed.
    Linalg(polymem_linalg::LinalgError),
    /// Operands live in incompatible spaces.
    SpaceMismatch {
        /// What was being attempted.
        op: &'static str,
    },
    /// A dimension index was out of range.
    BadDim {
        /// The offending index.
        dim: usize,
        /// The number of dimensions available.
        n_dims: usize,
    },
    /// Enumeration was asked for an unbounded (or parametric) set.
    Unbounded,
    /// Enumeration exceeded the caller-supplied point budget.
    TooManyPoints {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for PolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            PolyError::SpaceMismatch { op } => write!(f, "space mismatch in {op}"),
            PolyError::BadDim { dim, n_dims } => {
                write!(f, "dimension {dim} out of range (n_dims = {n_dims})")
            }
            PolyError::Unbounded => write!(f, "set is unbounded or still parametric"),
            PolyError::TooManyPoints { budget } => {
                write!(f, "integer point enumeration exceeded budget {budget}")
            }
        }
    }
}

impl std::error::Error for PolyError {}

impl From<polymem_linalg::LinalgError> for PolyError {
    fn from(e: polymem_linalg::LinalgError) -> Self {
        PolyError::Linalg(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PolyError>;
