//! Kernel specifications used in the paper's evaluation, plus extras.
//!
//! Each kernel module provides:
//!
//! * the affine **program** (built with the IR builder, matching the
//!   paper's loop structure — e.g. [`me`] reproduces Fig. 2);
//! * a **native reference implementation** (plain Rust loops) used to
//!   validate the polyhedral interpreter and the simulator;
//! * a **mapped kernel** builder (tiled + block/round dims) for the
//!   functional executor;
//! * an **analytic profile** builder that derives the
//!   [`KernelProfile`](polymem_machine::KernelProfile) for a given
//!   problem size / tile sizes / launch configuration from the
//!   compiler's own footprint and movement analysis — this is what the
//!   figure-reproduction benches evaluate.
//!
//! Modules: [`me`] (MPEG-4 motion estimation, Fig. 2), [`jacobi`]
//! (1-D Jacobi with concurrent-start time tiling), [`matmul`] and
//! [`jacobi2d`] (extra workloads for examples and tests).

pub mod conv2d;
pub mod jacobi;
pub mod jacobi2d;
pub mod matmul;
pub mod me;
pub mod tunespace;

/// Deterministic pseudo-random fill values for workload arrays (xorshift).
pub fn synth_value(seed: u64, idx: &[i64]) -> i64 {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &i in idx {
        x ^= (i as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
    }
    // Keep values small so i64 accumulations cannot overflow.
    (x % 256) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_values_are_deterministic_and_bounded() {
        let a = synth_value(1, &[3, 4]);
        let b = synth_value(1, &[3, 4]);
        assert_eq!(a, b);
        assert_ne!(synth_value(1, &[3, 4]), synth_value(2, &[3, 4]));
        for i in 0..100 {
            let v = synth_value(7, &[i, i * 3]);
            assert!((0..256).contains(&v));
        }
    }
}
