//! Candidate mapping spaces for the built-in kernels, feeding the
//! `polymem tune` autotuner.
//!
//! Each kernel gets an explicit table of [`TuneCandidate`]s: tile-size
//! menus crossed with the mapping shapes its constructors support
//! (all-blocked, sequential-sub-tile, hoisted), plus toggle variants
//! (double buffering, residency, hierarchy, vector width) — with the
//! CLI's canonical preset mapping pinned (`preset = true`) so the
//! tuned winner is ≤ the hand-picked mapping by construction.
//!
//! [`build`] is the inverse: it reconstructs the [`BlockedKernel`] a
//! persisted [`MappingDesc`] denotes, including the kernel-specific
//! schemes (`"jacobi_overlapped"`, `"jacobi_stepwise"`) that the
//! generic tiling scheme cannot express. `polymem run --tuned` and the
//! compile service use it to execute a tuned winner without searching.

use crate::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_core::smem::tune::MappingDesc;
use polymem_ir::{ArrayStore, Program};
use polymem_machine::{tile_kernel, BlockedKernel, MachineConfig, TuneCandidate};

/// The base (untiled) program and concrete parameters a built-in
/// kernel tunes at `--size`, plus the checked output array.
pub fn workload(name: &str, size: i64) -> Option<(Program, Vec<i64>, &'static str)> {
    Some(match name {
        "me" => {
            let s = me::MeSize {
                ni: size,
                nj: size,
                ws: 4,
            };
            (me::program(), me::params(&s), "Sad")
        }
        "jacobi" => {
            let s = jacobi::JacobiSize { n: size, t: 8 };
            (jacobi::program(), jacobi::params(&s), "A")
        }
        "jacobi2d" => (jacobi2d::program(), jacobi2d::params(3, size), "A"),
        "matmul" => (matmul::program(), vec![size], "C"),
        "conv2d" => {
            let s = conv2d::ConvSize { n: size, k: 3 };
            (conv2d::program(), conv2d::params(&s), "Out")
        }
        _ => return None,
    })
}

/// Deterministically seed a workload's array store (same seed the CLI
/// `run` check uses).
pub fn init_store(name: &str, store: &mut ArrayStore, seed: u64) {
    match name {
        "me" => me::init_store(store, seed),
        "jacobi" => jacobi::init_store(store, seed),
        "jacobi2d" => jacobi2d::init_store(store, seed),
        "matmul" => matmul::init_store(store, seed),
        "conv2d" => conv2d::init_store(store, seed),
        _ => {}
    }
}

/// Rebuild the kernel a mapping description denotes for `name`.
/// `None` when the scheme or tiles are not recognised (e.g. an
/// artifact written by a different kernel).
pub fn build(name: &str, desc: &MappingDesc) -> Option<BlockedKernel> {
    let tile =
        |d: &str| -> Option<i64> { desc.tiles.iter().find(|(n, _)| n == d).map(|(_, s)| *s) };
    match desc.scheme.as_str() {
        "tile" => {
            let (program, _, _) = workload(name, 8)?;
            tile_kernel(&program, desc).ok().flatten()
        }
        "jacobi_overlapped" => Some(jacobi::overlapped_kernel(
            tile("t")?,
            tile("i")?,
            desc.use_scratchpad,
        )),
        "jacobi_stepwise" => Some(jacobi::stepwise_kernel(tile("i")?, desc.use_scratchpad)),
        _ => None,
    }
}

/// Description of one `"tile"`-scheme shape: which tiled dims span
/// blocks vs the sequential intra-block loop.
struct Shape {
    seq_last: bool,
    double_buffer: bool,
    residency: bool,
}

fn tile_desc(
    tiles: Vec<(String, i64)>,
    round_dims: Vec<String>,
    thread: &str,
    n_block: usize,
    shape: &Shape,
    base: &MachineConfig,
) -> MappingDesc {
    // The first `n_block` tile loops span thread blocks; with
    // `seq_last`, the *last* tile loop instead runs sequentially
    // inside the block (matmul keeps `iT`,`jT` across blocks and
    // sequences `kT`; the 2-D kernels sequence `jT` under `iT`).
    let all: Vec<String> = tiles.iter().map(|(n, _)| format!("{n}T")).collect();
    let (block_dims, seq_dims) = if shape.seq_last && all.len() >= 2 {
        let last = all.len() - 1;
        (all[..n_block.min(last)].to_vec(), vec![all[last].clone()])
    } else {
        (all[..n_block.min(all.len())].to_vec(), vec![])
    };
    MappingDesc {
        scheme: "tile".into(),
        tiles,
        round_dims,
        block_dims,
        seq_dims,
        thread_dims: vec![thread.to_string()],
        use_scratchpad: true,
        double_buffer: shape.double_buffer,
        hierarchy: false,
        residency: shape.residency,
        vector_width: base.vector_width,
    }
}

/// The candidate space of one built-in kernel on `base`. `smoke`
/// narrows the tile menu for CI. The preset row reproduces the CLI's
/// canonical mapping with the base config's toggles.
pub fn candidates(name: &str, base: &MachineConfig, smoke: bool) -> Option<Vec<TuneCandidate>> {
    let sizes: &[i64] = if smoke { &[2, 4, 8] } else { &[2, 4, 8, 16] };
    let shapes: &[Shape] = if smoke {
        &[
            Shape {
                seq_last: false,
                double_buffer: false,
                residency: true,
            },
            Shape {
                seq_last: true,
                double_buffer: true,
                residency: true,
            },
        ]
    } else {
        &[
            Shape {
                seq_last: false,
                double_buffer: false,
                residency: true,
            },
            Shape {
                seq_last: true,
                double_buffer: false,
                residency: true,
            },
            Shape {
                seq_last: true,
                double_buffer: true,
                residency: true,
            },
            Shape {
                seq_last: true,
                double_buffer: true,
                residency: false,
            },
        ]
    };
    let mut out: Vec<TuneCandidate> = Vec::new();
    let mut push = |desc: MappingDesc, preset: bool| {
        if let Some(kernel) = build(name, &desc) {
            out.push(TuneCandidate {
                desc,
                kernel,
                preset,
            });
        }
    };
    match name {
        "me" | "conv2d" | "jacobi2d" => {
            let round: Vec<String> = if name == "jacobi2d" {
                vec!["t".into()]
            } else {
                vec![]
            };
            let preset = tile_desc(
                vec![("i".into(), 4), ("j".into(), 4)],
                round.clone(),
                "i",
                2,
                &Shape {
                    seq_last: false,
                    double_buffer: base.double_buffer,
                    residency: base.residency,
                },
                base,
            );
            push(preset, true);
            for &ti in sizes {
                for &tj in sizes {
                    for shape in shapes {
                        let d = tile_desc(
                            vec![("i".into(), ti), ("j".into(), tj)],
                            round.clone(),
                            "i",
                            2,
                            shape,
                            base,
                        );
                        push(d, false);
                    }
                }
            }
            // Unstaged baseline and a vector-width variant: wall-clock
            // knobs that never change modeled cycles, kept in the
            // space so the artifact records them.
            let d0 = tile_desc(
                vec![("i".into(), 4), ("j".into(), 4)],
                round.clone(),
                "i",
                2,
                &shapes[0],
                base,
            );
            push(
                MappingDesc {
                    use_scratchpad: false,
                    ..d0.clone()
                },
                false,
            );
            push(
                MappingDesc {
                    vector_width: (base.vector_width / 2).max(1),
                    ..d0
                },
                false,
            );
        }
        "matmul" => {
            let tk_menu: &[i64] = if smoke { &[8] } else { &[4, 8, 16] };
            let preset = tile_desc(
                vec![("i".into(), 4), ("j".into(), 4), ("k".into(), 8)],
                vec![],
                "i",
                2,
                &Shape {
                    seq_last: base.double_buffer,
                    double_buffer: base.double_buffer,
                    residency: base.residency,
                },
                base,
            );
            push(preset, true);
            for &ti in sizes {
                for &tj in sizes {
                    for &tk in tk_menu {
                        for shape in shapes {
                            let d = tile_desc(
                                vec![("i".into(), ti), ("j".into(), tj), ("k".into(), tk)],
                                vec![],
                                "i",
                                2,
                                shape,
                                base,
                            );
                            push(d, false);
                        }
                    }
                }
            }
            let d0 = tile_desc(
                vec![("i".into(), 4), ("j".into(), 4), ("k".into(), 8)],
                vec![],
                "i",
                2,
                &shapes[0],
                base,
            );
            push(
                MappingDesc {
                    use_scratchpad: false,
                    ..d0
                },
                false,
            );
        }
        "jacobi" => {
            // The preset is the paper's overlapped (time-tiled)
            // mapping; the space crosses its (time, space) tile sizes
            // and adds the stepwise per-round mapping with and
            // without scratchpad staging.
            let over = |tt: i64, si: i64, spad: bool| MappingDesc {
                scheme: "jacobi_overlapped".into(),
                tiles: vec![("t".into(), tt), ("i".into(), si)],
                round_dims: vec!["tT".into()],
                block_dims: vec!["iT".into()],
                seq_dims: vec![],
                thread_dims: vec![],
                use_scratchpad: spad,
                double_buffer: false,
                hierarchy: false,
                residency: base.residency,
                vector_width: base.vector_width,
            };
            push(over(2, 8, false), true);
            let tts: &[i64] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
            let sis: &[i64] = if smoke { &[4, 8, 16] } else { &[4, 8, 16, 32] };
            for &tt in tts {
                for &si in sis {
                    push(over(tt, si, false), false);
                }
            }
            for &si in sis {
                let step = MappingDesc {
                    scheme: "jacobi_stepwise".into(),
                    tiles: vec![("i".into(), si)],
                    round_dims: vec!["t".into()],
                    block_dims: vec!["iT".into()],
                    seq_dims: vec![],
                    thread_dims: vec!["i".into()],
                    use_scratchpad: true,
                    double_buffer: false,
                    hierarchy: false,
                    residency: base.residency,
                    vector_width: base.vector_width,
                };
                push(step.clone(), false);
                push(
                    MappingDesc {
                        use_scratchpad: false,
                        ..step
                    },
                    false,
                );
            }
        }
        _ => return None,
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_has_a_pinned_preset() {
        let gpu = MachineConfig::geforce_8800_gtx();
        for name in ["me", "jacobi", "jacobi2d", "matmul", "conv2d"] {
            let cands = candidates(name, &gpu, true).expect("space exists");
            assert!(
                cands.iter().filter(|c| c.preset).count() == 1,
                "{name} needs exactly one preset"
            );
            assert!(cands.len() >= 10, "{name} space too small: {}", cands.len());
        }
    }

    #[test]
    fn descs_rebuild_their_kernels() {
        let gpu = MachineConfig::geforce_8800_gtx();
        for name in ["me", "jacobi", "matmul"] {
            for c in candidates(name, &gpu, true).unwrap() {
                let k = build(name, &c.desc).expect("rebuilds");
                assert_eq!(k.block_dims, c.kernel.block_dims);
                assert_eq!(k.seq_dims, c.kernel.seq_dims);
                assert_eq!(k.use_scratchpad, c.kernel.use_scratchpad);
            }
        }
    }

    #[test]
    fn preset_matches_cli_canonical_mapping() {
        let gpu = MachineConfig::geforce_8800_gtx();
        let cands = candidates("matmul", &gpu, true).unwrap();
        let preset = cands.iter().find(|c| c.preset).unwrap();
        let canonical = matmul::blocked_kernel(4, 4, 8, true);
        assert_eq!(preset.kernel.block_dims, canonical.block_dims);
        assert_eq!(preset.kernel.seq_dims, canonical.seq_dims);
        assert_eq!(preset.kernel.thread_dims, canonical.thread_dims);
    }
}
