//! 1-D Jacobi with time tiling and concurrent start.
//!
//! The kernel:
//!
//! ```text
//! for t = 1, T
//!   for i = 1, N
//!     A[t][i] = (A[t-1][i-1] + A[t-1][i] + A[t-1][i+1]) / 3
//! ```
//!
//! Unlike ME, the time loop carries dependences across space tiles, so
//! thread blocks must synchronise. The paper time-tiles the kernel
//! using the concurrent-start transformation of Krishnamoorthy et al.
//! (PLDI'07); polymem implements the **overlapped-tile** variant: each
//! block redundantly recomputes a halo that grows one cell per time
//! step toward earlier rows, so that within one time tile no block
//! reads another block's fresh values — inter-block synchronisation is
//! needed only *between* time tiles. The overlapped domain is affine
//! and built with ordinary guards, so the whole compiler pipeline
//! applies unchanged.
//!
//! Figure reproduction: Fig. 5 sweeps problem size (8k–512k, T = 4096,
//! time tile 32, 64 threads); Fig. 7 sweeps thread blocks for
//! scratchpad-resident sizes; Fig. 8 sweeps (time, space) tile sizes
//! under the paper's per-block limit `M_up = 2^9` words, where the
//! §4.3 search picks space 256 / time 32.

use crate::synth_value;
use polymem_ir::expr::v;
use polymem_ir::{ArrayStore, Expr, LinExpr, Program, ProgramBuilder};
use polymem_machine::{BlockedKernel, KernelProfile, MachineConfig};

/// Problem instance.
#[derive(Clone, Copy, Debug)]
pub struct JacobiSize {
    /// Space points.
    pub n: i64,
    /// Time iterations (paper: 4096).
    pub t: i64,
}

/// Build the plain (unskewed) program; array `A[T+1][N+2]` keeps every
/// time row so transformations can be validated bit-exactly.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("jacobi1d", ["T", "N"]);
    b.array("A", &[v("T") + 1, v("N") + 2]);
    b.stmt("S")
        .loops(&[("t", LinExpr::c(1), v("T")), ("i", LinExpr::c(1), v("N"))])
        .write("A", &[v("t"), v("i")])
        .read("A", &[v("t") - 1, v("i") - 1])
        .read("A", &[v("t") - 1, v("i")])
        .read("A", &[v("t") - 1, v("i") + 1])
        .body(Expr::div(
            Expr::add(Expr::add(Expr::Read(0), Expr::Read(1)), Expr::Read(2)),
            Expr::Const(3),
        ))
        .done();
    b.build().expect("jacobi program is well-formed")
}

/// The concurrent-start (skewed) version: `s = 2t + i`, making every
/// dependence component non-negative so the (t, s) band is tilable.
pub fn skewed_program() -> Program {
    let mut b = ProgramBuilder::new("jacobi1d_skewed", ["T", "N"]);
    b.array("A", &[v("T") + 1, v("N") + 2]);
    let unskew = |t: LinExpr, s: LinExpr| -> Vec<LinExpr> { vec![t.clone(), s - t * 2] };
    b.stmt("S")
        .loops(&[
            ("t", LinExpr::c(1), v("T")),
            ("s", v("t") * 2 + 1, v("t") * 2 + v("N")),
        ])
        // With s = 2t + i, the stencil reads (t-1, i-1), (t-1, i),
        // (t-1, i+1) sit at skewed coordinates s-3, s-2, s-1.
        .write("A", &unskew(v("t"), v("s")))
        .read("A", &unskew(v("t") - 1, v("s") - 3))
        .read("A", &unskew(v("t") - 1, v("s") - 2))
        .read("A", &unskew(v("t") - 1, v("s") - 1))
        .body(Expr::div(
            Expr::add(Expr::add(Expr::Read(0), Expr::Read(1)), Expr::Read(2)),
            Expr::Const(3),
        ))
        .done();
    b.build().expect("skewed jacobi is well-formed")
}

/// Parameter vector for the programs.
pub fn params(size: &JacobiSize) -> Vec<i64> {
    vec![size.t, size.n]
}

/// Deterministic initial condition on row 0 (boundaries stay zero).
pub fn init_store(store: &mut ArrayStore, seed: u64) {
    store
        .fill_with("A", |ix| {
            if ix[0] == 0 {
                synth_value(seed, &ix[1..])
            } else {
                0
            }
        })
        .expect("A exists");
}

/// Native reference implementation.
pub fn reference(store: &mut ArrayStore, size: &JacobiSize) {
    let (t_max, n) = (size.t, size.n);
    let row = (n + 2) as usize;
    let a = store.data_mut("A").expect("A");
    for t in 1..=t_max as usize {
        for i in 1..=n as usize {
            a[t * row + i] =
                (a[(t - 1) * row + i - 1] + a[(t - 1) * row + i] + a[(t - 1) * row + i + 1]) / 3;
        }
    }
}

/// Simple mapping: every time step is a round (device sync), space
/// tiled across blocks. Used to validate the executor's round
/// semantics; the time-tiled mapping is [`overlapped_kernel`].
pub fn stepwise_kernel(space_tile: i64, use_scratchpad: bool) -> BlockedKernel {
    let p = program();
    let t = polymem_core::tiling::transform::tile_program(
        &p,
        &polymem_core::tiling::TileSpec::new(&[("i", space_tile)], "T"),
    )
    .expect("tiling is legal");
    BlockedKernel {
        program: t,
        round_dims: vec!["t".into()],
        block_dims: vec!["iT".into()],
        seq_dims: vec![],
        thread_dims: vec!["i".into()],
        use_scratchpad,
    }
}

/// The time-tiled **overlapped** mapping: rounds are time tiles of
/// `tt` steps; each block owns a base region of `si` cells and
/// redundantly recomputes a halo growing one cell per remaining time
/// step on each side, so all intra-tile reads are block-local or from
/// the previous round.
pub fn overlapped_kernel(tt: i64, si: i64, use_scratchpad: bool) -> BlockedKernel {
    assert!(tt >= 1 && si >= 1);
    let mut b = ProgramBuilder::new("jacobi1d_overlapped", ["T", "N"]);
    b.array("A", &[v("T") + 1, v("N") + 2]);
    // Dims: (tT, iT, t, i). Guards define the overlapped trapezoid.
    // t_top = tT*tt + tt (last row of the time tile).
    let t_top = v("tT") * tt + tt;
    b.stmt("S")
        .loops(&[
            ("tT", LinExpr::c(0), (v("T") - 1) * 1), // tightened by guards
            ("iT", LinExpr::c(0), v("N") - 1),       // tightened by guards
            ("t", LinExpr::c(1), v("T")),
            ("i", LinExpr::c(1), v("N")),
        ])
        // Time-tile membership.
        .guard_le(v("tT") * tt + 1, v("t"))
        .guard_le(v("t"), t_top.clone())
        // Base region of block iT: [iT*si + 1, (iT+1)*si].
        .guard_le(v("iT") * si + 1, v("N")) // block has a base cell
        // Overlap: |i - base| <= t_top - t on each side.
        .guard_le(v("iT") * si + 1 - (t_top.clone() - v("t")), v("i"))
        .guard_le(v("i"), (v("iT") + 1) * si + (t_top - v("t")))
        .write("A", &[v("t"), v("i")])
        .read("A", &[v("t") - 1, v("i") - 1])
        .read("A", &[v("t") - 1, v("i")])
        .read("A", &[v("t") - 1, v("i") + 1])
        .body(Expr::div(
            Expr::add(Expr::add(Expr::Read(0), Expr::Read(1)), Expr::Read(2)),
            Expr::Const(3),
        ))
        .done();
    let p = b.build().expect("overlapped jacobi is well-formed");
    BlockedKernel {
        program: p,
        round_dims: vec!["tT".into()],
        block_dims: vec!["iT".into()],
        seq_dims: vec![],
        thread_dims: vec![],
        use_scratchpad,
    }
}

/// Analytic profile for scratchpad-resident sizes (Fig. 7 setup): the
/// whole problem fits in the device's total scratchpad; per round only
/// halos move, and every round ends with a device-wide barrier.
pub fn profile_resident(
    size: &JacobiSize,
    tt: i64,
    n_blocks: u64,
    threads: u64,
    machine: &MachineConfig,
) -> KernelProfile {
    let rounds = (size.t as u64).div_ceil(tt as u64);
    let chunk = (size.n as u64).div_ceil(n_blocks);
    // Redundant halo recomputation of overlapped tiles: ~tt extra
    // cells per side per round on top of tt*chunk base work.
    let base = size.t as u64 * size.n as u64;
    let redundant = rounds * n_blocks * (tt * tt) as u64;
    KernelProfile {
        n_blocks,
        threads_per_block: threads,
        instances: base + redundant,
        ops_per_instance: 3,
        global_accesses_per_instance: 0,
        smem_accesses_per_instance: 4,
        movement_occurrences_per_block: rounds,
        // Halo exchange: 2·tt cells in per side.
        movement_volume_per_occurrence: (4 * tt) as u64,
        smem_bytes_per_block: (chunk + 2 * tt as u64) * machine.word_bytes,
        device_syncs: rounds,
    }
}

/// Analytic profile for large (tiled) sizes (Fig. 5 / Fig. 8 setup):
/// per (time tile × space tile) occurrence the block stages
/// `si + 2·tt` cells (in-place skewed update buffer), computes the
/// overlapped trapezoid, writes `si` cells back.
pub fn profile_tiled(
    size: &JacobiSize,
    tt: i64,
    si: i64,
    n_blocks: u64,
    threads: u64,
    use_scratchpad: bool,
    machine: &MachineConfig,
) -> KernelProfile {
    let rounds = (size.t as u64).div_ceil(tt as u64);
    let base = size.t as u64 * size.n as u64;
    if !use_scratchpad {
        return KernelProfile {
            n_blocks,
            threads_per_block: threads,
            instances: base,
            ops_per_instance: 3,
            // Unit-stride neighbours coalesce: the 3 reads + 1 write
            // cost ~2 effective transactions per instance.
            global_accesses_per_instance: 2,
            device_syncs: size.t as u64, // sync every time step
            ..KernelProfile::default()
        };
    }
    let space_tiles = (size.n as u64).div_ceil(si as u64);
    let occurrences = rounds * space_tiles.div_ceil(n_blocks);
    let redundant = rounds * space_tiles * (tt * tt) as u64;
    KernelProfile {
        n_blocks,
        threads_per_block: threads,
        instances: base + redundant,
        ops_per_instance: 3,
        global_accesses_per_instance: 0,
        smem_accesses_per_instance: 4,
        movement_occurrences_per_block: occurrences,
        // si + 2tt in (expanded base row), si out (final row).
        movement_volume_per_occurrence: (2 * si + 2 * tt) as u64,
        smem_bytes_per_block: ((si + 2 * tt) as u64) * machine.word_bytes,
        device_syncs: rounds,
    }
}

/// CPU profile for the baseline series of Fig. 5.
///
/// A 1-D stencil streams through the cache: its whole working set per
/// sweep is two rows that stay L1/L2-resident, so the CPU run is
/// compute-bound (this matches the paper's modest ~15× CPU-vs-staged
/// gap for Jacobi, against the >100× gap for the compute-heavy ME).
pub fn profile_cpu(size: &JacobiSize) -> KernelProfile {
    KernelProfile {
        n_blocks: 1,
        threads_per_block: 1,
        instances: (size.t * size.n) as u64,
        // 2 adds + a division (the division costs extra on the CPU's
        // scalar pipeline).
        ops_per_instance: 4,
        global_accesses_per_instance: 0,
        ..KernelProfile::default()
    }
}

/// Search (time, space) tile sizes for the Fig. 8 setting by
/// minimising the *estimated execution time* under the paper's
/// per-block scratchpad limit `mem_limit_words` (the §4.3 movement
/// model extended with the redundant-computation term overlapped
/// tiling introduces — without it the movement-only objective is
/// monotone in the time-tile size and has no interior optimum).
pub fn search_tiles(
    size: &JacobiSize,
    n_blocks: u64,
    threads: u64,
    mem_limit_words: u64,
    machine: &MachineConfig,
) -> (i64, i64, f64) {
    let mut best = (0i64, 0i64, f64::INFINITY);
    for &tt in &[8i64, 16, 32, 64, 128] {
        for &si in &[32i64, 64, 128, 256, 512] {
            if (si + 2 * tt) as u64 > mem_limit_words {
                continue;
            }
            if tt > size.t || si > size.n {
                continue;
            }
            let p = profile_tiled(size, tt, si, n_blocks, threads, true, machine);
            let Ok(t) = p.estimate(machine) else { continue };
            if t.total_ms < best.2 {
                best = (tt, si, t.total_ms);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::exec_program;
    use polymem_machine::execute_blocked;

    fn small() -> JacobiSize {
        JacobiSize { n: 12, t: 6 }
    }

    fn run_kernel(k: &BlockedKernel, s: &JacobiSize, parallel: bool) -> ArrayStore {
        let p = program();
        let mut st = ArrayStore::for_program(&p, &params(s)).unwrap();
        init_store(&mut st, 11);
        let cfg = MachineConfig::geforce_8800_gtx();
        execute_blocked(k, &params(s), &mut st, &cfg, parallel).unwrap();
        st
    }

    fn reference_store(s: &JacobiSize) -> ArrayStore {
        let p = program();
        let mut st = ArrayStore::for_program(&p, &params(s)).unwrap();
        init_store(&mut st, 11);
        reference(&mut st, s);
        st
    }

    #[test]
    fn interpreter_matches_native() {
        let s = small();
        let p = program();
        let mut st = ArrayStore::for_program(&p, &params(&s)).unwrap();
        init_store(&mut st, 11);
        exec_program(&p, &params(&s), &mut st).unwrap();
        assert_eq!(
            st.data("A").unwrap(),
            reference_store(&s).data("A").unwrap()
        );
    }

    #[test]
    fn skewed_program_matches_native() {
        let s = small();
        let p = skewed_program();
        let mut st = ArrayStore::for_program(&p, &params(&s)).unwrap();
        init_store(&mut st, 11);
        exec_program(&p, &params(&s), &mut st).unwrap();
        assert_eq!(
            st.data("A").unwrap(),
            reference_store(&s).data("A").unwrap()
        );
    }

    #[test]
    fn stepwise_blocked_matches_native() {
        let s = small();
        let st = run_kernel(&stepwise_kernel(4, false), &s, true);
        assert_eq!(
            st.data("A").unwrap(),
            reference_store(&s).data("A").unwrap()
        );
    }

    #[test]
    fn overlapped_kernel_matches_native() {
        for (tt, si) in [(2, 4), (3, 5), (6, 12), (2, 3)] {
            let s = small();
            let st = run_kernel(&overlapped_kernel(tt, si, false), &s, false);
            assert_eq!(
                st.data("A").unwrap(),
                reference_store(&s).data("A").unwrap(),
                "tt={tt} si={si}"
            );
        }
    }

    #[test]
    fn overlapped_kernel_parallel_matches_sequential() {
        let s = JacobiSize { n: 17, t: 5 };
        let a = run_kernel(&overlapped_kernel(2, 4, false), &s, false);
        let b = run_kernel(&overlapped_kernel(2, 4, false), &s, true);
        assert_eq!(a.data("A").unwrap(), b.data("A").unwrap());
        assert_eq!(a.data("A").unwrap(), reference_store(&s).data("A").unwrap());
    }

    #[test]
    fn fig7_u_shape_in_thread_blocks() {
        // Resident sizes: execution time falls with more blocks, then
        // rises when device-sync cost dominates (paper Fig. 7).
        let cfg = MachineConfig::geforce_8800_gtx();
        let s = JacobiSize {
            n: 32 * 1024,
            t: 4096,
        };
        let times: Vec<f64> = [16u64, 64, 128, 1024]
            .iter()
            .map(|&b| {
                profile_resident(&s, 32, b, 64, &cfg)
                    .estimate(&cfg)
                    .unwrap()
                    .total_ms
            })
            .collect();
        assert!(times[1] < times[0], "{times:?}");
        assert!(times[3] > times[2], "{times:?}");
    }

    #[test]
    fn fig8_search_finds_paper_tiles() {
        let cfg = MachineConfig::geforce_8800_gtx();
        let s = JacobiSize {
            n: 512 * 1024,
            t: 4096,
        };
        let (tt, si, _) = search_tiles(&s, 128, 64, 512, &cfg);
        assert_eq!((tt, si), (32, 256), "expected the paper's (32, 256)");
    }

    #[test]
    fn scratchpad_beats_dram_only_profile() {
        let cfg = MachineConfig::geforce_8800_gtx();
        let s = JacobiSize {
            n: 256 * 1024,
            t: 4096,
        };
        let smem = profile_tiled(&s, 32, 256, 128, 64, true, &cfg)
            .estimate(&cfg)
            .unwrap()
            .total_ms;
        let dram = profile_tiled(&s, 32, 256, 128, 64, false, &cfg)
            .estimate(&cfg)
            .unwrap()
            .total_ms;
        assert!(smem * 3.0 < dram, "{smem} vs {dram}");
    }

    #[test]
    fn gpu_beats_cpu_profile() {
        let gpu = MachineConfig::geforce_8800_gtx();
        let cpu = MachineConfig::host_cpu();
        let s = JacobiSize {
            n: 64 * 1024,
            t: 4096,
        };
        let t_gpu = profile_tiled(&s, 32, 256, 128, 64, true, &gpu)
            .estimate(&gpu)
            .unwrap()
            .total_ms;
        let t_cpu = profile_cpu(&s).estimate_cpu(&cpu).total_ms;
        assert!(t_cpu > 5.0 * t_gpu, "{t_cpu} vs {t_gpu}");
    }
}
