//! 2-D convolution with a small coefficient kernel — an extension
//! workload with the same memory character as ME (windowed reads with
//! heavy overlap) plus a second, tiny staged array (the coefficient
//! kernel, which Algorithm 1 stages because of its order-of-magnitude
//! reuse).
//!
//! ```text
//! for i = 0, N-1; for j = 0, N-1
//!   for k = 0, K-1; for l = 0, K-1
//!     Out[i][j] += In[i+k][j+l] * W[k][l]
//! ```

use crate::synth_value;
use polymem_core::tiling::transform::{tile_program, TileSpec};
use polymem_ir::expr::v;
use polymem_ir::{ArrayStore, Expr, LinExpr, Program, ProgramBuilder};
use polymem_machine::{BlockedKernel, KernelProfile, MachineConfig};

/// Problem instance: `n × n` outputs, `k × k` kernel.
#[derive(Clone, Copy, Debug)]
pub struct ConvSize {
    /// Output extent per dimension.
    pub n: i64,
    /// Kernel extent per dimension.
    pub k: i64,
}

/// Build the program.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("conv2d", ["N", "K"]);
    b.array("In", &[v("N") + v("K"), v("N") + v("K")]);
    b.array("W", &[v("K"), v("K")]);
    b.array("Out", &[v("N"), v("N")]);
    b.stmt("S")
        .loops(&[
            ("i", LinExpr::c(0), v("N") - 1),
            ("j", LinExpr::c(0), v("N") - 1),
            ("k", LinExpr::c(0), v("K") - 1),
            ("l", LinExpr::c(0), v("K") - 1),
        ])
        .write("Out", &[v("i"), v("j")])
        .read("Out", &[v("i"), v("j")])
        .read("In", &[v("i") + v("k"), v("j") + v("l")])
        .read("W", &[v("k"), v("l")])
        .body(Expr::add(
            Expr::Read(0),
            Expr::mul(Expr::Read(1), Expr::Read(2)),
        ))
        .done();
    b.build().expect("conv2d is well-formed")
}

/// Parameter vector for [`program`].
pub fn params(size: &ConvSize) -> Vec<i64> {
    vec![size.n, size.k]
}

/// Deterministic inputs.
pub fn init_store(store: &mut ArrayStore, seed: u64) {
    store
        .fill_with("In", |ix| synth_value(seed, ix))
        .expect("In exists");
    store
        .fill_with("W", |ix| synth_value(seed ^ 0x55, ix) % 8)
        .expect("W exists");
}

/// Native reference implementation.
pub fn reference(store: &mut ArrayStore, size: &ConvSize) {
    let (n, k) = (size.n as usize, size.k as usize);
    let row = n + k;
    let input = store.data("In").expect("In").to_vec();
    let w = store.data("W").expect("W").to_vec();
    let out = store.data_mut("Out").expect("Out");
    for i in 0..n {
        for j in 0..n {
            let mut acc = out[i * n + j];
            for kk in 0..k {
                for ll in 0..k {
                    acc += input[(i + kk) * row + j + ll] * w[kk * k + ll];
                }
            }
            out[i * n + j] = acc;
        }
    }
}

/// Block mapping: `(ti, tj)` output tiles across thread blocks.
pub fn blocked_kernel(ti: i64, tj: i64, use_scratchpad: bool) -> BlockedKernel {
    let p = program();
    let t = tile_program(&p, &TileSpec::new(&[("i", ti), ("j", tj)], "T"))
        .expect("tiling conv2d is legal");
    BlockedKernel {
        program: t,
        round_dims: vec![],
        block_dims: vec!["iT".into(), "jT".into()],
        seq_dims: vec![],
        thread_dims: vec!["i".into()],
        use_scratchpad,
    }
}

/// Like [`blocked_kernel`], but only `iT` spans thread blocks while
/// `jT` runs sequentially inside each block, so the double-buffered
/// DMA pipeline can prefetch the next output tile's input halo while
/// the current one computes (conv2d carries no dependences at all).
pub fn blocked_seq_kernel(ti: i64, tj: i64, use_scratchpad: bool) -> BlockedKernel {
    let mut k = blocked_kernel(ti, tj, use_scratchpad);
    k.block_dims = vec!["iT".into()];
    k.seq_dims = vec!["jT".into()];
    k
}

/// Analytic profile (used by the extension experiment in
/// EXPERIMENTS.md): same structure as ME's, with the extra `W` stage.
pub fn profile(
    size: &ConvSize,
    tiles: (i64, i64),
    n_blocks: u64,
    threads: u64,
    use_scratchpad: bool,
    machine: &MachineConfig,
) -> KernelProfile {
    let (ti, tj) = tiles;
    let instances = (size.n * size.n * size.k * size.k) as u64;
    if !use_scratchpad {
        return KernelProfile {
            n_blocks,
            threads_per_block: threads,
            instances,
            ops_per_instance: 2,
            global_accesses_per_instance: 2, // In + W (Out in register)
            ..KernelProfile::default()
        };
    }
    let halo = size.k - 1;
    let in_tile = ((ti + halo) * (tj + halo)) as u64;
    let w_tile = (size.k * size.k) as u64;
    let out_tile = (ti * tj) as u64;
    let words = in_tile + w_tile + out_tile;
    let tiles_total = (size.n as u64).div_ceil(ti as u64) * (size.n as u64).div_ceil(tj as u64);
    KernelProfile {
        n_blocks,
        threads_per_block: threads,
        instances,
        ops_per_instance: 2,
        global_accesses_per_instance: 0,
        smem_accesses_per_instance: 3,
        movement_occurrences_per_block: tiles_total.div_ceil(n_blocks),
        movement_volume_per_occurrence: in_tile + w_tile + 2 * out_tile,
        smem_bytes_per_block: words * machine.word_bytes,
        device_syncs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_core::smem::{analyze_program, SmemConfig};
    use polymem_ir::exec_program;
    use polymem_machine::execute_blocked;

    fn small() -> ConvSize {
        ConvSize { n: 7, k: 3 }
    }

    #[test]
    fn interpreter_matches_native() {
        let s = small();
        let p = program();
        let mut st = ArrayStore::for_program(&p, &params(&s)).unwrap();
        init_store(&mut st, 8);
        let mut native = st.clone();
        exec_program(&p, &params(&s), &mut st).unwrap();
        reference(&mut native, &s);
        assert_eq!(st.data("Out").unwrap(), native.data("Out").unwrap());
    }

    #[test]
    fn staged_execution_matches_native() {
        let s = small();
        let p = program();
        let mut st = ArrayStore::for_program(&p, &params(&s)).unwrap();
        init_store(&mut st, 9);
        let mut native = st.clone();
        let cfg = MachineConfig::geforce_8800_gtx();
        let stats = execute_blocked(
            &blocked_kernel(3, 3, true),
            &params(&s),
            &mut st,
            &cfg,
            true,
        )
        .unwrap();
        reference(&mut native, &s);
        assert_eq!(st.data("Out").unwrap(), native.data("Out").unwrap());
        assert!(stats.moved_in > 0);
    }

    #[test]
    fn coefficient_kernel_is_staged_by_rank_test() {
        // W[k][l] in a 4-deep nest: rank 2 < 4 — Algorithm 1 stages it.
        let p = program();
        let plan = analyze_program(
            &p,
            &SmemConfig {
                sample_params: vec![16, 3],
                ..SmemConfig::default()
            },
        )
        .unwrap();
        let w = p.array_index("W").unwrap();
        assert!(
            plan.buffers.iter().any(|b| b.array == w),
            "W must be staged"
        );
        // All three arrays have rank-deficient accesses here.
        assert!(plan.decisions.iter().all(|(_, d)| d.order_of_magnitude));
    }

    #[test]
    fn staged_profile_beats_dram() {
        let cfg = MachineConfig::geforce_8800_gtx();
        let s = ConvSize { n: 2048, k: 5 };
        let smem = profile(&s, (32, 32), 64, 256, true, &cfg)
            .estimate(&cfg)
            .unwrap()
            .total_ms;
        let dram = profile(&s, (32, 32), 64, 256, false, &cfg)
            .estimate(&cfg)
            .unwrap()
            .total_ms;
        assert!(smem * 2.0 < dram, "{smem} vs {dram}");
    }
}
