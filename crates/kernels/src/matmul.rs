//! Dense matrix multiplication `C = A × B` — the classic scratchpad
//! showcase, used by examples, tests and the ablation benches.
//!
//! All three arrays have order-of-magnitude reuse (`rank(F) = 2` in a
//! 3-deep nest), so Algorithm 1 stages all of them; the `C` buffer
//! hoists past the `k` tile loop (§4.2 placement).

use crate::synth_value;
use polymem_core::tiling::transform::{tile_program, TileSpec};
use polymem_ir::expr::v;
use polymem_ir::{ArrayStore, Expr, LinExpr, Program, ProgramBuilder};
use polymem_machine::BlockedKernel;

/// Build the `N × N` matmul program (accumulating into `C`).
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("matmul", ["N"]);
    b.array("A", &[v("N"), v("N")]);
    b.array("B", &[v("N"), v("N")]);
    b.array("C", &[v("N"), v("N")]);
    b.stmt("S")
        .loops(&[
            ("i", LinExpr::c(0), v("N") - 1),
            ("j", LinExpr::c(0), v("N") - 1),
            ("k", LinExpr::c(0), v("N") - 1),
        ])
        .write("C", &[v("i"), v("j")])
        .read("C", &[v("i"), v("j")])
        .read("A", &[v("i"), v("k")])
        .read("B", &[v("k"), v("j")])
        .body(Expr::add(
            Expr::Read(0),
            Expr::mul(Expr::Read(1), Expr::Read(2)),
        ))
        .done();
    b.build().expect("matmul program is well-formed")
}

/// Fill `A`/`B` deterministically.
pub fn init_store(store: &mut ArrayStore, seed: u64) {
    store
        .fill_with("A", |ix| synth_value(seed, ix))
        .expect("A exists");
    store
        .fill_with("B", |ix| synth_value(seed ^ 0xabcd, ix))
        .expect("B exists");
}

/// Native reference implementation.
pub fn reference(store: &mut ArrayStore, n: i64) {
    let a = store.data("A").expect("A").to_vec();
    let b = store.data("B").expect("B").to_vec();
    let c = store.data_mut("C").expect("C");
    let n = n as usize;
    for i in 0..n {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Map onto the machine: `(ti, tj, tk)` tiles, `(i, j)` tiles across
/// blocks, `k` tiles inside a block (staged together with the block).
pub fn blocked_kernel(ti: i64, tj: i64, tk: i64, use_scratchpad: bool) -> BlockedKernel {
    let p = program();
    let t = tile_program(&p, &TileSpec::new(&[("i", ti), ("j", tj), ("k", tk)], "T"))
        .expect("tiling matmul is legal");
    BlockedKernel {
        program: t,
        round_dims: vec![],
        block_dims: vec!["iT".into(), "jT".into()],
        seq_dims: vec![],
        thread_dims: vec!["i".into()],
        use_scratchpad,
    }
}

/// The paper's §4.2 mapping: `kT` is a *sequential sub-tile* loop
/// inside each block — A and B are re-staged per `kT` iteration, while
/// the `C` buffer (whose accesses do not depend on `k`) hoists: staged
/// once per block and written back once. This keeps the per-sub-tile
/// scratchpad footprint at `ti·tk + tk·tj + ti·tj` words instead of
/// the whole-block `ti·N + N·tj + ti·tj`.
pub fn blocked_kernel_hoisted(ti: i64, tj: i64, tk: i64, use_scratchpad: bool) -> BlockedKernel {
    let mut k = blocked_kernel(ti, tj, tk, use_scratchpad);
    k.seq_dims = vec!["kT".into()];
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_core::smem::{analyze_program, SmemConfig};
    use polymem_ir::exec_program;
    use polymem_machine::{execute_blocked, MachineConfig};

    #[test]
    fn interpreter_matches_native() {
        let p = program();
        let mut st = ArrayStore::for_program(&p, &[7]).unwrap();
        init_store(&mut st, 5);
        let mut native = st.clone();
        exec_program(&p, &[7], &mut st).unwrap();
        reference(&mut native, 7);
        assert_eq!(st.data("C").unwrap(), native.data("C").unwrap());
    }

    #[test]
    fn blocked_scratchpad_matches_native() {
        let p = program();
        let mut st = ArrayStore::for_program(&p, &[8]).unwrap();
        init_store(&mut st, 9);
        let mut native = st.clone();
        let k = blocked_kernel(4, 4, 4, true);
        let cfg = MachineConfig::geforce_8800_gtx();
        let stats = execute_blocked(&k, &[8], &mut st, &cfg, true).unwrap();
        reference(&mut native, 8);
        assert_eq!(st.data("C").unwrap(), native.data("C").unwrap());
        assert!(stats.smem_reads > 0);
    }

    #[test]
    fn all_arrays_are_staged_by_algorithm_1() {
        let p = program();
        let plan = analyze_program(
            &p,
            &SmemConfig {
                sample_params: vec![16],
                ..SmemConfig::default()
            },
        )
        .unwrap();
        // A, B and C all have rank-deficient accesses: three buffers.
        assert_eq!(plan.buffers.len(), 3);
        for (_, d) in &plan.decisions {
            assert!(d.beneficial);
            assert!(d.order_of_magnitude);
        }
    }

    #[test]
    fn hoisted_mapping_matches_native_and_saves_traffic() {
        let p = program();
        let n = 12i64;
        let mut base = ArrayStore::for_program(&p, &[n]).unwrap();
        init_store(&mut base, 31);
        let mut expected = base.clone();
        reference(&mut expected, n);
        let cfg = MachineConfig::geforce_8800_gtx();

        // Hoisted: kT sub-tiles, C staged once per block.
        let mut st_h = base.clone();
        let hoisted = blocked_kernel_hoisted(4, 4, 3, true);
        let sh = execute_blocked(&hoisted, &[n], &mut st_h, &cfg, true).unwrap();
        assert_eq!(st_h.data("C").unwrap(), expected.data("C").unwrap());

        // Exact traffic accounting for n = 12, (ti, tj, tk) = (4, 4, 3):
        // 9 blocks x 4 kT sub-tiles; per sub-tile A and B move 4*3 = 12
        // words each; C moves 16 in + 16 out ONCE per block thanks to
        // hoisting. Total in = 9*(4*24 + 16) = 1008; out = 9*16 = 144.
        assert_eq!(sh.moved_in, 1008, "C must not be re-staged per kT");
        assert_eq!(sh.moved_out, 144);

        // Whole-block staging moves the same elements but needs the
        // full A row / B column resident: footprint 4*12 + 12*4 + 16 =
        // 112 words vs the sub-tiled 12 + 12 + 16 = 40.
        let mut st_w = base.clone();
        let whole = blocked_kernel(4, 4, 12, true);
        let sw = execute_blocked(&whole, &[n], &mut st_w, &cfg, true).unwrap();
        assert_eq!(st_w.data("C").unwrap(), expected.data("C").unwrap());
        assert_eq!(sw.max_smem_words, 112);
        assert_eq!(sh.max_smem_words, 40);
    }

    #[test]
    fn c_buffer_hoists_past_k_tiles() {
        use polymem_core::smem::dataspace::collect_refs;
        use polymem_core::tiling::placement_level;
        let p = program();
        let c = p.array_index("C").unwrap();
        let refs = collect_refs(&p, c).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        // Tiling loop order (iT, jT, kT) == access dims (i, j, k):
        // movement for C sits inside (iT, jT) only.
        assert_eq!(placement_level(&members, &[0, 1, 2]), 2);
    }
}
