//! 2-D Jacobi (5-point stencil) — an extension workload exercising
//! 2-D data spaces with halos, used by examples and property tests.
//!
//! ```text
//! for t = 1, T
//!   for i = 1, N; for j = 1, N
//!     A[t][i][j] = (A[t-1][i][j] + A[t-1][i-1][j] + A[t-1][i+1][j]
//!                   + A[t-1][i][j-1] + A[t-1][i][j+1]) / 5
//! ```

use crate::synth_value;
use polymem_core::tiling::transform::{tile_program, TileSpec};
use polymem_ir::expr::v;
use polymem_ir::{ArrayStore, Expr, LinExpr, Program, ProgramBuilder};
use polymem_machine::BlockedKernel;

/// Build the program; `A[T+1][N+2][N+2]` keeps all time rows.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("jacobi2d", ["T", "N"]);
    b.array("A", &[v("T") + 1, v("N") + 2, v("N") + 2]);
    let at =
        |dt: i64, di: i64, dj: i64| -> Vec<LinExpr> { vec![v("t") + dt, v("i") + di, v("j") + dj] };
    b.stmt("S")
        .loops(&[
            ("t", LinExpr::c(1), v("T")),
            ("i", LinExpr::c(1), v("N")),
            ("j", LinExpr::c(1), v("N")),
        ])
        .write("A", &at(0, 0, 0))
        .read("A", &at(-1, 0, 0))
        .read("A", &at(-1, -1, 0))
        .read("A", &at(-1, 1, 0))
        .read("A", &at(-1, 0, -1))
        .read("A", &at(-1, 0, 1))
        .body(Expr::div(
            Expr::add(
                Expr::add(
                    Expr::add(Expr::Read(0), Expr::Read(1)),
                    Expr::add(Expr::Read(2), Expr::Read(3)),
                ),
                Expr::Read(4),
            ),
            Expr::Const(5),
        ))
        .done();
    b.build().expect("jacobi2d is well-formed")
}

/// Parameters for [`program`].
pub fn params(t: i64, n: i64) -> Vec<i64> {
    vec![t, n]
}

/// Deterministic initial condition on time row 0.
pub fn init_store(store: &mut ArrayStore, seed: u64) {
    store
        .fill_with("A", |ix| {
            if ix[0] == 0 {
                synth_value(seed, &ix[1..])
            } else {
                0
            }
        })
        .expect("A exists");
}

/// Native reference implementation.
pub fn reference(store: &mut ArrayStore, t_max: i64, n: i64) {
    let row = (n + 2) as usize;
    let plane = row * row;
    let a = store.data_mut("A").expect("A");
    for t in 1..=t_max as usize {
        for i in 1..=n as usize {
            for j in 1..=n as usize {
                let p = (t - 1) * plane;
                a[t * plane + i * row + j] = (a[p + i * row + j]
                    + a[p + (i - 1) * row + j]
                    + a[p + (i + 1) * row + j]
                    + a[p + i * row + j - 1]
                    + a[p + i * row + j + 1])
                    / 5;
            }
        }
    }
}

/// Per-time-step rounds, `(i, j)` space tiles across blocks.
pub fn stepwise_kernel(ti: i64, tj: i64, use_scratchpad: bool) -> BlockedKernel {
    let p = program();
    let t =
        tile_program(&p, &TileSpec::new(&[("i", ti), ("j", tj)], "T")).expect("tiling is legal");
    BlockedKernel {
        program: t,
        round_dims: vec!["t".into()],
        block_dims: vec!["iT".into(), "jT".into()],
        seq_dims: vec![],
        thread_dims: vec!["i".into()],
        use_scratchpad,
    }
}

/// Like [`stepwise_kernel`], but only `iT` spans thread blocks while
/// the `jT` tile loop runs *sequentially inside* each block — the
/// shape the double-buffered DMA pipeline targets: while one `jT`
/// sub-tile computes, the next one's read tiles prefetch (the time
/// recurrence is carried by the `t` rounds, not by `jT`, so overlap
/// is legal).
pub fn stepwise_seq_kernel(ti: i64, tj: i64, use_scratchpad: bool) -> BlockedKernel {
    let mut k = stepwise_kernel(ti, tj, use_scratchpad);
    k.block_dims = vec!["iT".into()];
    k.seq_dims = vec!["jT".into()];
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::exec_program;
    use polymem_machine::{execute_blocked, MachineConfig};

    #[test]
    fn interpreter_matches_native() {
        let p = program();
        let prm = params(3, 6);
        let mut st = ArrayStore::for_program(&p, &prm).unwrap();
        init_store(&mut st, 21);
        let mut native = st.clone();
        exec_program(&p, &prm, &mut st).unwrap();
        reference(&mut native, 3, 6);
        assert_eq!(st.data("A").unwrap(), native.data("A").unwrap());
    }

    #[test]
    fn stepwise_blocked_with_scratchpad_matches_native() {
        let p = program();
        let prm = params(2, 8);
        let mut st = ArrayStore::for_program(&p, &prm).unwrap();
        init_store(&mut st, 33);
        let mut native = st.clone();
        let k = stepwise_kernel(4, 4, true);
        let cfg = MachineConfig::geforce_8800_gtx();
        let stats = execute_blocked(&k, &prm, &mut st, &cfg, true).unwrap();
        reference(&mut native, 2, 8);
        assert_eq!(st.data("A").unwrap(), native.data("A").unwrap());
        assert!(stats.moved_in > 0);
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn seq_kernel_double_buffers_bit_exactly() {
        let p = program();
        let prm = params(2, 8);
        let mut native = {
            let mut st = ArrayStore::for_program(&p, &prm).unwrap();
            init_store(&mut st, 33);
            st
        };
        reference(&mut native, 2, 8);
        let k = stepwise_seq_kernel(4, 4, true);
        let run = |double_buffer: bool| {
            let mut st = ArrayStore::for_program(&p, &prm).unwrap();
            init_store(&mut st, 33);
            let mut cfg = MachineConfig::cell_like();
            cfg.double_buffer = double_buffer;
            let stats = execute_blocked(&k, &prm, &mut st, &cfg, false).unwrap();
            (st, stats)
        };
        let (off_st, off) = run(false);
        let (on_st, on) = run(true);
        assert_eq!(on_st.data("A").unwrap(), native.data("A").unwrap());
        assert_eq!(off_st.data("A").unwrap(), native.data("A").unwrap());
        // The t recurrence lives in rounds, so jT sub-tiles overlap.
        assert!(on.overlap_groups > 0);
        assert_eq!(on.sync_groups, 0);
        assert!(on.modeled_cycles <= off.modeled_cycles);
    }
}
