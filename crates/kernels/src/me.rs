//! MPEG-4 Motion Estimation (the paper's Fig. 2 kernel).
//!
//! ```text
//! FORALL i = 1, Ni
//!   FORALL j = 1, Nj
//!     FOR k = 1, WS
//!       FOR l = 1, WS
//!         Sad[i][j] += |Cur[i+k][j+l] − Ref[i+k][j+l]|
//! ```
//!
//! `(i, j)` range over candidate positions (space loops, no
//! synchronisation across thread blocks); `(k, l)` scan the 16×16
//! window (time loops). The paper's Fig. 4 sweeps total problem size
//! (`Ni·Nj` from 256k to 64M) with 32 thread blocks × 256 threads;
//! Fig. 6 sweeps tile sizes, where the §4.3 search picks
//! `(32, 16, 16, 16)`.

use crate::synth_value;
use polymem_core::smem::dataspace::collect_refs;
use polymem_core::tiling::cost::{BufferCost, CostModel};
use polymem_core::tiling::transform::{tile_program, TileSpec};
use polymem_core::tiling::{search_discrete, SearchOutcome, TileSizeProblem};
use polymem_ir::expr::v;
use polymem_ir::{ArrayStore, Expr, LinExpr, Program, ProgramBuilder};
use polymem_machine::{BlockedKernel, KernelProfile, MachineConfig};

/// Problem instance: `ni × nj` candidate positions, `ws × ws` window.
#[derive(Clone, Copy, Debug)]
pub struct MeSize {
    /// Rows of candidate positions.
    pub ni: i64,
    /// Columns of candidate positions.
    pub nj: i64,
    /// Search-window extent (paper: 16).
    pub ws: i64,
}

impl MeSize {
    /// Total positions (`Ni·Nj`), the paper's "problem size".
    pub fn positions(&self) -> u64 {
        (self.ni * self.nj) as u64
    }

    /// A roughly square instance with the given total positions.
    pub fn square(total: u64, ws: i64) -> MeSize {
        let side = (total as f64).sqrt().round() as i64;
        MeSize {
            ni: side,
            nj: side,
            ws,
        }
    }
}

/// Build the Fig. 2 program.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("mpeg4_me", ["Ni", "Nj", "W"]);
    b.array("Cur", &[v("Ni") + v("W"), v("Nj") + v("W")]);
    b.array("Ref", &[v("Ni") + v("W"), v("Nj") + v("W")]);
    b.array("Sad", &[v("Ni"), v("Nj")]);
    b.stmt("S1")
        .loops(&[
            ("i", LinExpr::c(0), v("Ni") - 1),
            ("j", LinExpr::c(0), v("Nj") - 1),
            ("k", LinExpr::c(0), v("W") - 1),
            ("l", LinExpr::c(0), v("W") - 1),
        ])
        .write("Sad", &[v("i"), v("j")])
        .read("Sad", &[v("i"), v("j")])
        .read("Cur", &[v("i") + v("k"), v("j") + v("l")])
        .read("Ref", &[v("i") + v("k"), v("j") + v("l")])
        .body(Expr::add(
            Expr::Read(0),
            Expr::abs(Expr::sub(Expr::Read(1), Expr::Read(2))),
        ))
        .done();
    b.build().expect("ME program is well-formed")
}

/// Parameter vector for [`program`].
pub fn params(size: &MeSize) -> Vec<i64> {
    vec![size.ni, size.nj, size.ws]
}

/// Fill `Cur`/`Ref` with deterministic synthetic frame data.
pub fn init_store(store: &mut ArrayStore, seed: u64) {
    store
        .fill_with("Cur", |ix| synth_value(seed, ix))
        .expect("Cur exists");
    store
        .fill_with("Ref", |ix| synth_value(seed ^ 0xffff, ix))
        .expect("Ref exists");
}

/// Native reference implementation (plain loops over the same store).
pub fn reference(store: &mut ArrayStore, size: &MeSize) {
    let (ni, nj, ws) = (size.ni, size.nj, size.ws);
    let cur = store.data("Cur").expect("Cur").to_vec();
    let refr = store.data("Ref").expect("Ref").to_vec();
    let row = (nj + ws) as usize;
    let sad = store.data_mut("Sad").expect("Sad");
    for i in 0..ni {
        for j in 0..nj {
            let mut acc = 0i64;
            for k in 0..ws {
                for l in 0..ws {
                    let o = (i + k) as usize * row + (j + l) as usize;
                    acc += (cur[o] - refr[o]).abs();
                }
            }
            sad[(i * nj + j) as usize] = acc;
        }
    }
}

/// Tile the program and map it onto the machine: `(ti, tj)` tiles of
/// positions per thread block, no inter-block synchronisation.
pub fn blocked_kernel(ti: i64, tj: i64, use_scratchpad: bool) -> BlockedKernel {
    let p = program();
    let t =
        tile_program(&p, &TileSpec::new(&[("i", ti), ("j", tj)], "T")).expect("tiling ME is legal");
    BlockedKernel {
        program: t,
        round_dims: vec![],
        block_dims: vec!["iT".into(), "jT".into()],
        seq_dims: vec![],
        thread_dims: vec!["i".into()],
        use_scratchpad,
    }
}

/// Like [`blocked_kernel`], but only `iT` spans thread blocks while
/// `jT` runs sequentially inside each block — the double-buffered
/// DMA pipeline prefetches the next position tile's search window
/// while the current one computes (ME is embarrassingly parallel, so
/// every group overlaps).
pub fn blocked_seq_kernel(ti: i64, tj: i64, use_scratchpad: bool) -> BlockedKernel {
    let mut k = blocked_kernel(ti, tj, use_scratchpad);
    k.block_dims = vec!["iT".into()];
    k.seq_dims = vec!["jT".into()];
    k
}

/// The §4.3 cost model for ME over tile sizes `(ti, tj, tk, tl)`.
pub fn cost_model(size: &MeSize) -> CostModel {
    let p = program();
    let tiled_loops = [0usize, 1, 2, 3];
    let mut buffers = Vec::new();
    for name in ["Cur", "Ref", "Sad"] {
        let ai = p.array_index(name).expect("array exists");
        let refs = collect_refs(&p, ai).expect("dataspaces");
        let members: Vec<&_> = refs.iter().collect();
        // §4.2 placement: Sad's movement hoists past the (k, l) tile
        // loops (redundant for Sad[i][j]); Cur/Ref depend on all four
        // loops, so their movement recurs per (k, l) tile — which is
        // why the search keeps t_k = t_l = WS (one window tile).
        let placement = polymem_core::tiling::placement_level(&members, &tiled_loops);
        buffers.push(BufferCost::from_refs(
            name,
            &members,
            &[0, 1],
            &tiled_loops,
            placement,
        ));
    }
    CostModel {
        buffers,
        loop_ranges: vec![
            size.ni as f64,
            size.nj as f64,
            size.ws as f64,
            size.ws as f64,
        ],
    }
}

/// Run the paper's tile-size search (Fig. 6 setup): the expected
/// optimum for the 8800 configuration is `(32, 16, 16, 16)`.
pub fn search_tiles(size: &MeSize, machine: &MachineConfig, threads: u64) -> SearchOutcome {
    let cost = cost_model(size);
    let problem = TileSizeProblem {
        cost,
        params: machine.cost_params(threads as f64),
        mem_limit: (machine.smem_bytes / machine.word_bytes) as f64,
    };
    // Candidates: powers of two for the space tiles; window tiles up
    // to WS (the placement-aware cost model makes sub-window tiles pay
    // their extra Cur/Ref movement occurrences, so WS wins on merit).
    let w = size.ws.min(16);
    let cands = vec![
        vec![8, 16, 32, 64],
        vec![8, 16, 32, 64],
        vec![w / 4, w / 2, w],
        vec![w / 4, w / 2, w],
    ];
    search_discrete(&problem, Some(cands))
}

/// Analytic execution profile for the figure harness.
///
/// `tiles = (ti, tj)` position-tile per thread block iteration;
/// `n_blocks`/`threads` the launch configuration; `use_scratchpad`
/// switches between the staged and DRAM-only variants.
pub fn profile(
    size: &MeSize,
    tiles: (i64, i64),
    n_blocks: u64,
    threads: u64,
    use_scratchpad: bool,
    machine: &MachineConfig,
) -> KernelProfile {
    let (ti, tj) = tiles;
    let instances = size.positions() * (size.ws * size.ws) as u64;
    // 3 reads + 1 write per instance; SAD body = sub + abs + add.
    let ops = 3;
    if !use_scratchpad {
        return KernelProfile {
            n_blocks,
            threads_per_block: threads,
            instances,
            ops_per_instance: ops,
            // Sad stays in a register across the window in any
            // reasonable compilation; Cur and Ref hit DRAM.
            global_accesses_per_instance: 2,
            ..KernelProfile::default()
        };
    }
    // Footprints from the compiler's model: per (ti, tj) tile.
    let cm = cost_model(size);
    let t = [ti as f64, tj as f64, size.ws as f64, size.ws as f64];
    let mut tile_words = cm.memory(&t);
    let mut volume_per_occ: f64 = cm
        .buffers
        .iter()
        .map(|b| {
            b.read.as_ref().map_or(0.0, |f| f.volume(&t))
                + b.write.as_ref().map_or(0.0, |f| f.volume(&t))
        })
        .sum();
    // The paper's rule: when a tile needs more scratchpad than
    // available, split it (an extra sequential tiling level) until it
    // fits — modelled by halving tj.
    let budget = (machine.smem_bytes / machine.word_bytes) as f64;
    let mut splits = 1.0;
    let mut tj_eff = tj as f64;
    while tile_words > budget && tj_eff > 1.0 {
        tj_eff /= 2.0;
        splits *= 2.0;
        let t2 = [ti as f64, tj_eff, size.ws as f64, size.ws as f64];
        tile_words = cm.memory(&t2);
        volume_per_occ = cm
            .buffers
            .iter()
            .map(|b| {
                b.read.as_ref().map_or(0.0, |f| f.volume(&t2))
                    + b.write.as_ref().map_or(0.0, |f| f.volume(&t2))
            })
            .sum();
    }
    let tiles_total =
        (size.ni as f64 / ti as f64).ceil() * (size.nj as f64 / tj as f64).ceil() * splits;
    let occurrences_per_block = (tiles_total / n_blocks as f64).ceil() as u64;
    KernelProfile {
        n_blocks,
        threads_per_block: threads,
        instances,
        ops_per_instance: ops,
        global_accesses_per_instance: 0,
        smem_accesses_per_instance: 3,
        movement_occurrences_per_block: occurrences_per_block,
        movement_volume_per_occurrence: volume_per_occ as u64,
        smem_bytes_per_block: (tile_words as u64) * machine.word_bytes,
        device_syncs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::exec_program;
    use polymem_machine::execute_blocked;

    fn small() -> MeSize {
        MeSize {
            ni: 6,
            nj: 5,
            ws: 3,
        }
    }

    #[test]
    fn interpreter_matches_native_reference() {
        let s = small();
        let p = program();
        let mut st = ArrayStore::for_program(&p, &params(&s)).unwrap();
        init_store(&mut st, 42);
        let mut native = st.clone();
        exec_program(&p, &params(&s), &mut st).unwrap();
        reference(&mut native, &s);
        assert_eq!(st.data("Sad").unwrap(), native.data("Sad").unwrap());
    }

    #[test]
    fn blocked_scratchpad_run_matches_reference() {
        let s = small();
        let k = blocked_kernel(2, 2, true);
        let mut st = ArrayStore::for_program(&program(), &params(&s)).unwrap();
        init_store(&mut st, 7);
        let mut native = st.clone();
        let cfg = MachineConfig::geforce_8800_gtx();
        let stats = execute_blocked(&k, &params(&s), &mut st, &cfg, true).unwrap();
        reference(&mut native, &s);
        assert_eq!(st.data("Sad").unwrap(), native.data("Sad").unwrap());
        assert!(stats.moved_in > 0);
        assert!(stats.smem_reads > 0);
    }

    #[test]
    fn scratchpad_cuts_global_traffic_heavily() {
        let s = MeSize {
            ni: 8,
            nj: 8,
            ws: 4,
        };
        let cfg = MachineConfig::geforce_8800_gtx();
        let mut st1 = ArrayStore::for_program(&program(), &params(&s)).unwrap();
        init_store(&mut st1, 3);
        let mut st2 = st1.clone();
        let d = execute_blocked(
            &blocked_kernel(4, 4, false),
            &params(&s),
            &mut st1,
            &cfg,
            false,
        )
        .unwrap();
        let m = execute_blocked(
            &blocked_kernel(4, 4, true),
            &params(&s),
            &mut st2,
            &cfg,
            false,
        )
        .unwrap();
        // The window overlap means each Cur/Ref element is read WS^2
        // times from DRAM without staging, ~once with staging.
        assert!(
            m.global_reads * 4 < d.global_reads,
            "{} vs {}",
            m.global_reads,
            d.global_reads
        );
        assert_eq!(st1.data("Sad").unwrap(), st2.data("Sad").unwrap());
    }

    #[test]
    fn tile_search_picks_the_paper_optimum() {
        let s = MeSize::square(1 << 22, 16); // 4M positions
        let cfg = MachineConfig::geforce_8800_gtx();
        let out = search_tiles(&s, &cfg, 256);
        assert_eq!(
            out.sizes,
            vec![32, 16, 16, 16],
            "expected the paper's (32, 16, 16, 16), cost {}",
            out.cost
        );
    }

    #[test]
    fn profile_scratchpad_beats_dram_in_time() {
        let s = MeSize::square(1 << 20, 16);
        let cfg = MachineConfig::geforce_8800_gtx();
        let dram = profile(&s, (32, 16), 32, 256, false, &cfg);
        let smem = profile(&s, (32, 16), 32, 256, true, &cfg);
        let td = dram.estimate(&cfg).unwrap().total_ms;
        let tsm = smem.estimate(&cfg).unwrap().total_ms;
        assert!(tsm * 3.0 < td, "{tsm} vs {td}");
    }

    #[test]
    fn oversized_tiles_get_split_not_rejected() {
        let s = MeSize::square(1 << 20, 16);
        let cfg = MachineConfig::geforce_8800_gtx();
        let p = profile(&s, (64, 64), 32, 256, true, &cfg);
        assert!(p.smem_bytes_per_block <= cfg.smem_bytes);
        assert!(p.movement_occurrences_per_block > 0);
    }

    #[test]
    fn me_size_helpers() {
        let s = MeSize::square(1 << 20, 16);
        let total = s.positions();
        let rel = (total as f64 - (1u64 << 20) as f64).abs() / ((1u64 << 20) as f64);
        assert!(rel < 0.01);
    }
}
