//! The `polymem serve` daemon.
//!
//! A persistent compile service over plain TCP + line-delimited JSON
//! (std only; the build environment has no reachable crates-io
//! mirror). `threads` acceptor/worker threads all block on one shared
//! listener; each connection is served by the thread that accepted it,
//! one request per line, one JSON response per line. All connections
//! share:
//!
//! - one warm in-memory [`PlanLru`] of symbolic plans, keyed by the
//!   same content address as the on-disk store, with LRU eviction and
//!   generation-bumping invalidation;
//! - one [`ArtifactStore`] directory (when configured), so plans
//!   survive daemon restarts;
//! - one [`LaunchGate`] bounding how many block launches run
//!   concurrently on the executor's worker pool (requests over the
//!   limit queue on the gate, batching launches instead of
//!   oversubscribing the host).
//!
//! ## Protocol
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"cmd":"run","kernel":"me","machine":"gpu","size":32}
//! {"cmd":"analyze","kernel":"jacobi2d","machine":"cell","size":32}
//! {"cmd":"ping"} | {"cmd":"stats"} | {"cmd":"invalidate"} | {"cmd":"shutdown"}
//! ```
//!
//! Optional request fields: `double_buffer`, `hierarchy`, `residency`
//! (booleans; defaults false/true/true like the CLI), `vector_width`,
//! and `tuned` (boolean): resolve the autotuned mapping for the
//! kernel from the tune artifact store (`polymem tune` writes it;
//! zero search cost when warm, a fresh pruned search otherwise) and
//! execute that instead of the preset — the response's `mapping`
//! field reports which mapping ran.
//! Responses always carry `"ok"`; failures add `"error"` and a
//! `"class"` (`usage` | `compile` | `runtime`) mirroring the CLI's
//! exit-code taxonomy. `run` responses carry the result `checksum`
//! (FNV-1a over the checked output array, bit-comparable with a direct
//! in-process `execute_blocked` of the same launch), `plan_source`
//! (`seeded` | `artifact` | `fresh` | `none`), wall-clock `elapsed_ns`
//! and the §3 `analysis_ns` actually spent compiling (zero on seed and
//! artifact hits).
//!
//! [`ArtifactStore`]: polymem_core::smem::ArtifactStore

use crate::json::Json;
use crate::lru::PlanLru;
use crate::workload;
use polymem_ir::ArrayStore;
use polymem_kernels::tunespace;
use polymem_machine::{
    config_for, execute_blocked_seeded, plan_artifact_key, tune, warm_plan, BlockedKernel,
    MachineConfig, PassProfiler, PlanSource, TuneOptions,
};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Reject request lines longer than this (a hostile client must not
/// grow the line buffer without bound).
const MAX_LINE_BYTES: usize = 1 << 20;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (the handle reports
    /// the resolved address).
    pub addr: String,
    /// Acceptor/worker threads (one connection each at a time).
    pub threads: usize,
    /// Artifact-store directory plans persist to across restarts;
    /// `None` keeps the cache in-memory only.
    pub artifact_dir: Option<String>,
    /// Warm-cache capacity in plans.
    pub lru_capacity: usize,
    /// Maximum concurrently executing launches; further `run`
    /// requests queue on the gate.
    pub launch_slots: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7311".into(),
            threads: 4,
            artifact_dir: None,
            lru_capacity: 64,
            launch_slots: 2,
        }
    }
}

/// A counting semaphore over `Mutex` + `Condvar`: bounds concurrent
/// launches without busy-waiting.
struct LaunchGate {
    slots: usize,
    busy: Mutex<usize>,
    cv: Condvar,
}

impl LaunchGate {
    fn new(slots: usize) -> LaunchGate {
        LaunchGate {
            slots: slots.max(1),
            busy: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> GateGuard<'_> {
        let mut n = self.busy.lock().unwrap();
        while *n >= self.slots {
            n = self.cv.wait(n).unwrap();
        }
        *n += 1;
        GateGuard { gate: self }
    }
}

struct GateGuard<'a> {
    gate: &'a LaunchGate,
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let mut n = self.gate.busy.lock().unwrap();
        *n -= 1;
        self.gate.cv.notify_one();
    }
}

/// State shared by all worker threads.
struct Shared {
    lru: PlanLru,
    gate: LaunchGate,
    artifact_dir: Option<String>,
    stop: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// The daemon. [`Server::start`] binds, spawns the workers and
/// returns a handle; the process keeps serving until `shutdown` (a
/// protocol request or [`ServerHandle::shutdown`]).
pub struct Server;

/// A running daemon: resolved address plus the join/shutdown handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr` and start serving on `cfg.threads` threads.
    pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
        let listener = Arc::new(TcpListener::bind(&cfg.addr)?);
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            lru: PlanLru::new(cfg.lru_capacity),
            gate: LaunchGate::new(cfg.launch_slots),
            artifact_dir: cfg.artifact_dir.clone(),
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let threads = cfg.threads.max(1);
        let workers = (0..threads)
            .map(|_| {
                let listener = listener.clone();
                let shared = shared.clone();
                std::thread::spawn(move || {
                    loop {
                        if shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if shared.stop.load(Ordering::SeqCst) {
                                    break;
                                }
                                let _ = serve_connection(stream, &shared, addr);
                            }
                            // Transient accept errors (EMFILE, aborted
                            // handshakes) must not kill the worker.
                            Err(_) => {
                                if shared.stop.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        Ok(ServerHandle {
            addr,
            shared,
            workers,
        })
    }
}

impl ServerHandle {
    /// The resolved bind address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the workers and join them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the daemon stops on its own (a protocol `shutdown`
    /// request) — the foreground `polymem serve` mode.
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Each blocked accept() needs one wake-up connection.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

/// Serve one accepted connection: request per line, response per line,
/// until EOF, a shutdown request, or daemon stop. Reads use a short
/// timeout so a worker parked on an idle connection notices `stop`
/// (otherwise [`ServerHandle::shutdown`] would join it forever);
/// `read_until` keeps partially received bytes across timeouts.
fn serve_connection(stream: TcpStream, shared: &Shared, addr: SocketAddr) -> io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut raw: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) || raw.len() > MAX_LINE_BYTES {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        if raw.len() > MAX_LINE_BYTES {
            return Ok(());
        }
        let line = String::from_utf8_lossy(&raw).trim().to_string();
        if line.is_empty() {
            raw.clear();
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let (resp, shutdown) = handle_line(&line, shared);
        raw.clear();
        out.write_all(resp.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        if shutdown {
            shared.stop.store(true, Ordering::SeqCst);
            // Wake sibling workers parked in accept().
            for _ in 0..8 {
                let _ = TcpStream::connect(addr);
            }
            return Ok(());
        }
    }
}

fn obj(fields: Vec<(&str, Json)>) -> String {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect()).to_string()
}

fn err(class: &str, msg: &str) -> String {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("class", Json::Str(class.into())),
        ("error", Json::Str(msg.into())),
    ])
}

fn source_str(source: Option<PlanSource>) -> &'static str {
    match source {
        Some(PlanSource::Seeded) => "seeded",
        Some(PlanSource::Artifact) => "artifact",
        Some(PlanSource::Fresh) => "fresh",
        None => "none",
    }
}

/// One parsed request.
struct Request {
    kernel: String,
    machine: String,
    size: i64,
    double_buffer: bool,
    hierarchy: bool,
    residency: bool,
    vector_width: Option<u64>,
    tuned: bool,
}

impl Request {
    fn from(v: &Json) -> Request {
        let b = |k: &str, d: bool| v.get(k).and_then(Json::as_bool).unwrap_or(d);
        Request {
            kernel: v
                .get("kernel")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            machine: v
                .get("machine")
                .and_then(Json::as_str)
                .unwrap_or("gpu")
                .to_string(),
            size: v.get("size").and_then(Json::as_i64).unwrap_or(16),
            double_buffer: b("double_buffer", false),
            hierarchy: b("hierarchy", true),
            residency: b("residency", true),
            vector_width: v
                .get("vector_width")
                .and_then(Json::as_i64)
                .and_then(|w| u64::try_from(w).ok()),
            tuned: b("tuned", false),
        }
    }

    /// The launch configuration, mirroring `polymem run`'s flag
    /// handling over the named description: any machine in the
    /// registry works (`cpu` stays an accepted alias for `host`).
    fn machine_config(&self, artifact_dir: &Option<String>) -> Option<MachineConfig> {
        let mut cfg = polymem_machine::desc::lookup(&self.machine)?.config();
        cfg.double_buffer = self.double_buffer;
        cfg.hierarchy = self.hierarchy;
        cfg.residency = cfg.residency && self.residency;
        if let Some(w) = self.vector_width {
            if w >= 1 {
                cfg.vector_width = w;
            }
        }
        cfg.artifact_dir = artifact_dir.clone();
        Some(cfg)
    }
}

/// Parse and dispatch one request line. Returns the response line and
/// whether the daemon should shut down.
fn handle_line(line: &str, shared: &Shared) -> (String, bool) {
    let Some(v) = Json::parse(line) else {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return (err("usage", "request is not valid JSON"), false);
    };
    let cmd = v.get("cmd").and_then(Json::as_str).unwrap_or("");
    let resp = match cmd {
        "ping" => obj(vec![
            ("ok", Json::Bool(true)),
            ("pong", Json::Bool(true)),
            (
                "schema",
                Json::Str(format!(
                    "{:016x}",
                    polymem_core::smem::artifact::schema_hash()
                )),
            ),
        ]),
        "stats" => {
            let s = shared.lru.stats();
            obj(vec![
                ("ok", Json::Bool(true)),
                (
                    "requests",
                    Json::Num(shared.requests.load(Ordering::Relaxed) as f64),
                ),
                (
                    "errors",
                    Json::Num(shared.errors.load(Ordering::Relaxed) as f64),
                ),
                ("lru_hits", Json::Num(s.hits as f64)),
                ("lru_misses", Json::Num(s.misses as f64)),
                ("lru_evictions", Json::Num(s.evictions as f64)),
                ("lru_resident", Json::Num(s.resident as f64)),
                ("generation", Json::Num(s.generation as f64)),
                (
                    "artifact_dir",
                    match &shared.artifact_dir {
                        Some(d) => Json::Str(d.clone()),
                        None => Json::Null,
                    },
                ),
            ])
        }
        "invalidate" => {
            let g = shared.lru.invalidate();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(g as f64)),
            ])
        }
        "shutdown" => {
            return (obj(vec![("ok", Json::Bool(true))]), true);
        }
        "run" => handle_run(&Request::from(&v), shared),
        "analyze" => handle_analyze(&Request::from(&v), shared),
        other => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            err("usage", &format!("unknown cmd `{other}`"))
        }
    };
    (resp, false)
}

/// Resolve the autotuned mapping for a `tuned` request: the same
/// search (and artifact key) as `polymem tune <kernel>` / `polymem
/// run --tuned`, so a tune artifact written by the CLI answers with
/// zero simulations. The search runs under the launch gate.
fn tuned_mapping(
    req: &Request,
    shared: &Shared,
) -> Result<(BlockedKernel, MachineConfig, String), String> {
    let mut base = match polymem_machine::desc::lookup(&req.machine) {
        Some(d) => d.config(),
        None => return Err(format!("unknown machine `{}`", req.machine)),
    };
    base.artifact_dir = shared.artifact_dir.clone();
    let cands = tunespace::candidates(&req.kernel, &base, false)
        .ok_or_else(|| format!("no tune space for `{}`", req.kernel))?;
    let (program, params, _) = tunespace::workload(&req.kernel, req.size)
        .ok_or_else(|| format!("no workload for `{}`", req.kernel))?;
    let opts = TuneOptions {
        space_label: format!("cli:{}:size={}", req.kernel, req.size),
        ..TuneOptions::default()
    };
    let name = req.kernel.clone();
    let out = {
        let _slot = shared.gate.acquire();
        tune(
            &program,
            &params,
            &|st: &mut ArrayStore| tunespace::init_store(&name, st, 42),
            &cands,
            &base,
            &opts,
        )
    }
    .map_err(|e| e.to_string())?;
    let kernel = tunespace::build(&req.kernel, &out.winner)
        .ok_or_else(|| format!("winner `{}` does not rebuild", out.winner.label()))?;
    let cfg = config_for(&out.winner, &base);
    Ok((
        kernel,
        cfg,
        format!("{} [{}]", out.winner.label(), out.plan_source),
    ))
}

/// Resolve a request's workload, config and content address, plus the
/// warm-cache seed if the plan is already resident. For `tuned`
/// requests the preset mapping (and the request's execution toggles)
/// are replaced by the autotuned winner; the returned label reports
/// which mapping runs.
#[allow(clippy::type_complexity)]
fn prepare(
    req: &Request,
    shared: &Shared,
) -> Result<
    (
        workload::Workload,
        MachineConfig,
        Option<String>,
        Option<Arc<polymem_core::smem::SymbolicPlan>>,
        Option<String>,
    ),
    String,
> {
    let Some(mut w) = workload::resolve(&req.kernel, req.size, req.double_buffer) else {
        return Err(err("usage", &format!("unknown kernel `{}`", req.kernel)));
    };
    let Some(mut cfg) = req.machine_config(&shared.artifact_dir) else {
        return Err(err("usage", &format!("unknown machine `{}`", req.machine)));
    };
    let mut mapping = None;
    if req.tuned {
        match tuned_mapping(req, shared) {
            Ok((kernel, tcfg, label)) => {
                w.kernel = kernel;
                cfg = tcfg;
                mapping = Some(label);
            }
            Err(m) => mapping = Some(format!("preset [tune failed: {m}]")),
        }
    }
    let key_hex = match plan_artifact_key(&w.kernel, &w.params, &cfg) {
        Ok(k) => k.map(|k| k.to_string()),
        Err(e) => return Err(err("compile", &e.to_string())),
    };
    let seed = key_hex.as_deref().and_then(|k| shared.lru.get(k));
    Ok((w, cfg, key_hex, seed, mapping))
}

fn handle_run(req: &Request, shared: &Shared) -> String {
    let (w, cfg, key_hex, seed, mapping) = match prepare(req, shared) {
        Ok(p) => p,
        Err(resp) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return resp;
        }
    };
    let mut st = match ArrayStore::for_program(&w.program, &w.params) {
        Ok(s) => s,
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return err("compile", &e.to_string());
        }
    };
    workload::init(&req.kernel, &mut st);
    let profiler = PassProfiler::new();
    let t0 = Instant::now();
    let outcome = {
        let _slot = shared.gate.acquire();
        execute_blocked_seeded(
            &w.kernel,
            &w.params,
            &mut st,
            &cfg,
            true,
            Some(&profiler),
            seed.as_ref(),
        )
    };
    let elapsed = t0.elapsed();
    let (stats, warmed) = match outcome {
        Ok(r) => r,
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return err("runtime", &e.to_string());
        }
    };
    let source = warmed.as_ref().map(|(_, s)| *s);
    if let (Some(kh), Some((sp, _))) = (&key_hex, &warmed) {
        shared.lru.insert(kh.clone(), sp.clone());
    }
    let analysis_ns = profiler.report().compiler_total().as_nanos() as u64;
    let checksum = match st.data(w.check) {
        Ok(data) => workload::checksum(data),
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return err("runtime", &e.to_string());
        }
    };
    obj(vec![
        ("ok", Json::Bool(true)),
        ("kernel", Json::Str(req.kernel.clone())),
        ("machine", Json::Str(req.machine.clone())),
        ("size", Json::Num(req.size as f64)),
        ("mapping", mapping.map(Json::Str).unwrap_or(Json::Null)),
        ("plan_source", Json::Str(source_str(source).into())),
        ("key", key_hex.map(Json::Str).unwrap_or(Json::Null)),
        ("checksum", Json::Str(format!("{checksum:016x}"))),
        ("elapsed_ns", Json::Num(elapsed.as_nanos() as f64)),
        ("analysis_ns", Json::Num(analysis_ns as f64)),
        ("blocks", Json::Num(stats.blocks as f64)),
        ("rounds", Json::Num(stats.rounds as f64)),
        ("instances", Json::Num(stats.instances as f64)),
        ("plan_cache_hits", Json::Num(stats.plan_cache_hits as f64)),
        (
            "plan_cache_misses",
            Json::Num(stats.plan_cache_misses as f64),
        ),
        (
            "generation",
            Json::Num(shared.lru.stats().generation as f64),
        ),
    ])
}

fn handle_analyze(req: &Request, shared: &Shared) -> String {
    let (w, cfg, key_hex, seed, mapping) = match prepare(req, shared) {
        Ok(p) => p,
        Err(resp) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return resp;
        }
    };
    let profiler = PassProfiler::new();
    let t0 = Instant::now();
    let warmed = match warm_plan(&w.kernel, &w.params, &cfg, Some(&profiler), seed.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return err("compile", &e.to_string());
        }
    };
    let elapsed = t0.elapsed();
    let source = warmed.as_ref().map(|(_, s)| *s);
    if let (Some(kh), Some((sp, _))) = (&key_hex, &warmed) {
        shared.lru.insert(kh.clone(), sp.clone());
    }
    let analysis_ns = profiler.report().compiler_total().as_nanos() as u64;
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("kernel", Json::Str(req.kernel.clone())),
        ("machine", Json::Str(req.machine.clone())),
        ("mapping", mapping.map(Json::Str).unwrap_or(Json::Null)),
        ("plan_source", Json::Str(source_str(source).into())),
        ("key", key_hex.map(Json::Str).unwrap_or(Json::Null)),
        ("elapsed_ns", Json::Num(elapsed.as_nanos() as f64)),
        ("analysis_ns", Json::Num(analysis_ns as f64)),
    ];
    if let Some((sp, _)) = &warmed {
        fields.push(("buffers", Json::Num(sp.plan.buffers.len() as f64)));
        fields.push((
            "fixed",
            Json::Arr(sp.fixed.iter().map(|f| Json::Str(f.clone())).collect()),
        ));
        fields.push(("hierarchy_plan", Json::Bool(sp.hier.is_some())));
        fields.push(("residency_plan", Json::Bool(sp.residency.is_some())));
    }
    obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn request(reader: &mut BufReader<TcpStream>, out: &mut TcpStream, line: &str) -> Json {
        out.write_all(line.as_bytes()).unwrap();
        out.write_all(b"\n").unwrap();
        out.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        Json::parse(resp.trim()).expect("response is JSON")
    }

    fn start_local() -> ServerHandle {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            artifact_dir: None,
            lru_capacity: 8,
            launch_slots: 2,
        })
        .unwrap()
    }

    #[test]
    fn ping_stats_and_errors_round_trip() {
        let h = start_local();
        let (mut r, mut w) = client(h.addr());
        let pong = request(&mut r, &mut w, r#"{"cmd":"ping"}"#);
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
        let bad = request(&mut r, &mut w, "not json");
        assert_eq!(bad.get("class").unwrap().as_str(), Some("usage"));
        let unknown = request(&mut r, &mut w, r#"{"cmd":"frobnicate"}"#);
        assert_eq!(unknown.get("ok").unwrap().as_bool(), Some(false));
        let stats = request(&mut r, &mut w, r#"{"cmd":"stats"}"#);
        assert!(stats.get("requests").unwrap().as_i64().unwrap() >= 3);
        h.shutdown();
    }

    #[test]
    fn run_warms_the_cache_and_matches_direct_execution() {
        let h = start_local();
        let (mut r, mut w) = client(h.addr());
        let req = r#"{"cmd":"run","kernel":"matmul","machine":"gpu","size":8}"#;
        let first = request(&mut r, &mut w, req);
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true), "{first:?}");
        assert_eq!(first.get("plan_source").unwrap().as_str(), Some("fresh"));
        let second = request(&mut r, &mut w, req);
        assert_eq!(second.get("plan_source").unwrap().as_str(), Some("seeded"));
        assert_eq!(second.get("analysis_ns").unwrap().as_i64(), Some(0));
        assert_eq!(
            first.get("checksum").unwrap().as_str(),
            second.get("checksum").unwrap().as_str()
        );
        // Bit-exact against a direct in-process execution.
        let wl = workload::resolve("matmul", 8, false).unwrap();
        let cfg = MachineConfig::geforce_8800_gtx();
        let mut st = ArrayStore::for_program(&wl.program, &wl.params).unwrap();
        workload::init("matmul", &mut st);
        polymem_machine::execute_blocked(&wl.kernel, &wl.params, &mut st, &cfg, true).unwrap();
        let direct = format!("{:016x}", workload::checksum(st.data("C").unwrap()));
        assert_eq!(first.get("checksum").unwrap().as_str(), Some(&direct[..]));
        // Invalidate drops the warm cache: next run is fresh again.
        let inv = request(&mut r, &mut w, r#"{"cmd":"invalidate"}"#);
        assert_eq!(inv.get("generation").unwrap().as_i64(), Some(1));
        let third = request(&mut r, &mut w, req);
        assert_eq!(third.get("plan_source").unwrap().as_str(), Some("fresh"));
        h.shutdown();
    }

    #[test]
    fn analyze_then_run_shares_the_warm_plan() {
        let h = start_local();
        let (mut r, mut w) = client(h.addr());
        let analyze = request(
            &mut r,
            &mut w,
            r#"{"cmd":"analyze","kernel":"conv2d","machine":"gpu","size":8}"#,
        );
        assert_eq!(analyze.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(analyze.get("plan_source").unwrap().as_str(), Some("fresh"));
        assert!(analyze.get("buffers").unwrap().as_i64().unwrap() > 0);
        let run = request(
            &mut r,
            &mut w,
            r#"{"cmd":"run","kernel":"conv2d","machine":"gpu","size":8}"#,
        );
        assert_eq!(run.get("plan_source").unwrap().as_str(), Some("seeded"));
        h.shutdown();
    }

    #[test]
    fn every_registered_machine_serves_and_unknown_names_are_usage_errors() {
        let h = start_local();
        let (mut r, mut w) = client(h.addr());
        // The same kernel is bit-exact on every registered machine:
        // the checksums all agree even as the mappings diverge.
        let mut checksums = Vec::new();
        for m in polymem_machine::desc::NAMES {
            let req = format!(r#"{{"cmd":"run","kernel":"matmul","machine":"{m}","size":8}}"#);
            let resp = request(&mut r, &mut w, &req);
            assert_eq!(
                resp.get("ok").unwrap().as_bool(),
                Some(true),
                "{m}: {resp:?}"
            );
            checksums.push(resp.get("checksum").unwrap().as_str().unwrap().to_string());
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "machines disagree: {checksums:?}"
        );
        // Aliases resolve through the same registry.
        let alias = request(
            &mut r,
            &mut w,
            r#"{"cmd":"run","kernel":"matmul","machine":"cpu","size":8}"#,
        );
        assert_eq!(alias.get("ok").unwrap().as_bool(), Some(true));
        // Unknown names are usage-class errors, not crashes.
        let bad = request(
            &mut r,
            &mut w,
            r#"{"cmd":"run","kernel":"matmul","machine":"quantum","size":8}"#,
        );
        assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(bad.get("class").unwrap().as_str(), Some("usage"));
        h.shutdown();
    }

    #[test]
    fn tuned_run_reports_the_winning_mapping() {
        let dir = std::env::temp_dir().join(format!("polymem-serve-tuned-{}", std::process::id()));
        let h = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            artifact_dir: Some(dir.to_string_lossy().into_owned()),
            lru_capacity: 8,
            launch_slots: 2,
        })
        .unwrap();
        let (mut r, mut w) = client(h.addr());
        let req = r#"{"cmd":"run","kernel":"matmul","machine":"gpu","size":8,"tuned":true}"#;
        let first = request(&mut r, &mut w, req);
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true), "{first:?}");
        let mapping = first.get("mapping").unwrap().as_str().unwrap().to_string();
        assert!(
            mapping.contains("[search]"),
            "cold tune searches: {mapping}"
        );
        // Second request answers from the persisted tune artifact.
        let second = request(&mut r, &mut w, req);
        let mapping2 = second.get("mapping").unwrap().as_str().unwrap().to_string();
        assert!(
            mapping2.contains("[artifact]"),
            "warm tune loads: {mapping2}"
        );
        assert_eq!(
            first.get("checksum").unwrap().as_str(),
            second.get("checksum").unwrap().as_str()
        );
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_request_stops_all_workers() {
        let h = start_local();
        let addr = h.addr();
        let (mut r, mut w) = client(addr);
        let bye = request(&mut r, &mut w, r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("ok").unwrap().as_bool(), Some(true));
        h.shutdown(); // joins; must not hang
                      // The port no longer accepts new work.
        std::thread::sleep(std::time::Duration::from_millis(50));
        if let Ok(s) = TcpStream::connect(addr) {
            // A connection may still be accepted by the OS backlog,
            // but no worker will serve it: expect EOF.
            let mut line = String::new();
            let mut rd = BufReader::new(s);
            let _ = rd.read_line(&mut line);
            assert!(line.is_empty());
        }
    }
}
