//! `polymem serve`: a persistent compile service.
//!
//! Re-running `polymem run` pays the §3 symbolic analysis on every
//! process start. This crate keeps that work warm twice over:
//!
//! - **in memory** — a shared [`PlanLru`] of `Arc<SymbolicPlan>`s,
//!   seeded straight into launches (`PlanSource::Seeded`), evicted
//!   least-recently-used, invalidated by generation;
//! - **on disk** — the content-addressed artifact store
//!   (`polymem_core::smem::artifact`), which survives restarts and is
//!   fully re-proved on load (`PlanSource::Artifact`).
//!
//! The daemon itself ([`Server`]) is std-only: a `TcpListener` shared
//! by a small thread pool, speaking line-delimited JSON ([`json`]),
//! with concurrent launches batched onto the executor's worker pool
//! through a counting gate. `polymem serve` starts it from the CLI;
//! the `serve` bench drives it with a multi-tenant load generator.

pub mod json;
pub mod lru;
pub mod server;
pub mod workload;

pub use json::Json;
pub use lru::{LruStats, PlanLru};
pub use server::{ServeConfig, Server, ServerHandle};
pub use workload::{checksum, Workload, KERNELS};
