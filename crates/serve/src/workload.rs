//! Built-in kernel resolution for the compile service.
//!
//! Mirrors the `polymem` CLI's kernel table (same canonical blocked
//! mappings, same parameter construction, same deterministic seed-42
//! initialisation, same checked output array), so a `run` request
//! against the daemon computes bit-for-bit the same launch as
//! `polymem run <kernel> --size N`.

use polymem_ir::{ArrayStore, Program};
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::BlockedKernel;

/// The built-in kernel names the service accepts.
pub const KERNELS: [&str; 5] = ["me", "jacobi", "jacobi2d", "matmul", "conv2d"];

/// Everything needed to execute one service request.
pub struct Workload {
    /// The whole-program IR (reference executions run this).
    pub program: Program,
    /// The canonical blocked mapping.
    pub kernel: BlockedKernel,
    /// Concrete parameter values for `size`.
    pub params: Vec<i64>,
    /// The output array whose contents define the result checksum.
    pub check: &'static str,
}

/// Resolve a built-in kernel at a problem size. `db` selects the
/// sequential-sub-tile variant that double buffering overlaps (the
/// CLI's `--double-buffer` table). `None` for unknown names.
pub fn resolve(name: &str, size: i64, db: bool) -> Option<Workload> {
    let (program, params, check) = match name {
        "me" => {
            let s = me::MeSize {
                ni: size,
                nj: size,
                ws: 4,
            };
            (me::program(), me::params(&s), "Sad")
        }
        "jacobi" => {
            let s = jacobi::JacobiSize { n: size, t: 8 };
            (jacobi::program(), jacobi::params(&s), "A")
        }
        "jacobi2d" => (jacobi2d::program(), jacobi2d::params(3, size), "A"),
        "matmul" => (matmul::program(), vec![size], "C"),
        "conv2d" => {
            let s = conv2d::ConvSize { n: size, k: 3 };
            (conv2d::program(), conv2d::params(&s), "Out")
        }
        _ => return None,
    };
    let kernel = match name {
        "me" => {
            if db {
                me::blocked_seq_kernel(4, 4, true)
            } else {
                me::blocked_kernel(4, 4, true)
            }
        }
        "jacobi" => jacobi::overlapped_kernel(2, 8, false),
        "jacobi2d" => {
            if db {
                jacobi2d::stepwise_seq_kernel(4, 4, true)
            } else {
                jacobi2d::stepwise_kernel(4, 4, true)
            }
        }
        "matmul" => {
            if db {
                matmul::blocked_kernel_hoisted(4, 4, 8, true)
            } else {
                matmul::blocked_kernel(4, 4, 8, true)
            }
        }
        "conv2d" => {
            if db {
                conv2d::blocked_seq_kernel(4, 4, true)
            } else {
                conv2d::blocked_kernel(4, 4, true)
            }
        }
        _ => unreachable!("names covered above"),
    };
    Some(Workload {
        program,
        kernel,
        params,
        check,
    })
}

/// Deterministically initialise a workload's store (seed 42, like the
/// CLI).
pub fn init(name: &str, st: &mut ArrayStore) {
    match name {
        "me" => me::init_store(st, 42),
        "jacobi" => jacobi::init_store(st, 42),
        "jacobi2d" => jacobi2d::init_store(st, 42),
        "matmul" => matmul::init_store(st, 42),
        "conv2d" => conv2d::init_store(st, 42),
        _ => {}
    }
}

/// FNV-1a over an array's words: the result fingerprint `run`
/// responses carry, comparable against a direct in-process execution.
pub fn checksum(data: &[i64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in data {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_resolve_both_variants() {
        for name in KERNELS {
            for db in [false, true] {
                let w = resolve(name, 16, db).unwrap();
                assert!(!w.params.is_empty());
                assert!(w.program.arrays.iter().any(|a| a.name == w.check));
            }
        }
        assert!(resolve("nope", 16, false).is_none());
    }

    #[test]
    fn init_is_deterministic() {
        let w = resolve("me", 16, false).unwrap();
        let mut a = ArrayStore::for_program(&w.program, &w.params).unwrap();
        let mut b = ArrayStore::for_program(&w.program, &w.params).unwrap();
        init("me", &mut a);
        init("me", &mut b);
        assert_eq!(
            checksum(a.data("Cur").unwrap()),
            checksum(b.data("Cur").unwrap())
        );
    }
}
