//! The daemon's warm in-memory plan cache.
//!
//! One shared LRU over all connections, keyed by the same
//! content-address hex the on-disk [`ArtifactStore`] uses, holding
//! `Arc<SymbolicPlan>`s that launches seed directly (no decode, no
//! re-proof — the plan never left the process). Eviction is
//! least-recently-used by a monotone sequence number; `invalidate`
//! requests clear the cache and bump its generation, so statistics and
//! responses can attribute hits to the cache version that produced
//! them.
//!
//! [`ArtifactStore`]: polymem_core::smem::ArtifactStore

use polymem_core::smem::SymbolicPlan;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Counters a `stats` request reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Seed hits served from the warm cache.
    pub hits: u64,
    /// Lookups that found nothing (or a stale generation).
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries inserted since start.
    pub insertions: u64,
    /// Current resident entry count.
    pub resident: usize,
    /// Cache generation (bumped by every `invalidate`).
    pub generation: u64,
}

struct Inner {
    entries: HashMap<String, (Arc<SymbolicPlan>, u64)>,
    seq: u64,
    stats: LruStats,
}

/// A thread-safe LRU of warm symbolic plans.
pub struct PlanLru {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl PlanLru {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanLru {
        PlanLru {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                seq: 0,
                stats: LruStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Look up a plan by its content-address hex, refreshing its
    /// recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<SymbolicPlan>> {
        let mut g = self.inner.lock().unwrap();
        g.seq += 1;
        let seq = g.seq;
        match g.entries.get_mut(key) {
            Some((plan, last)) => {
                *last = seq;
                let plan = plan.clone();
                g.stats.hits += 1;
                g.stats.resident = g.entries.len();
                Some(plan)
            }
            None => {
                g.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a plan, evicting the least recently used
    /// entry when over capacity.
    pub fn insert(&self, key: String, plan: Arc<SymbolicPlan>) {
        let mut g = self.inner.lock().unwrap();
        g.seq += 1;
        let seq = g.seq;
        if g.entries.insert(key, (plan, seq)).is_none() {
            g.stats.insertions += 1;
        }
        while g.entries.len() > self.capacity {
            if let Some(victim) = g
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k.clone())
            {
                g.entries.remove(&victim);
                g.stats.evictions += 1;
            } else {
                break;
            }
        }
        g.stats.resident = g.entries.len();
    }

    /// Drop every cached plan and bump the generation. Returns the new
    /// generation.
    pub fn invalidate(&self) -> u64 {
        let mut g = self.inner.lock().unwrap();
        g.entries.clear();
        g.stats.resident = 0;
        g.stats.generation += 1;
        g.stats.generation
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> LruStats {
        self.inner.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_core::smem::{analyze_symbolic, SmemConfig};
    use polymem_ir::builder::ProgramBuilder;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr};

    fn plan(tag: i64) -> Arc<SymbolicPlan> {
        let mut b = ProgramBuilder::new("lru", ["N"]);
        b.array("A", &[v("N") + 4]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i") + tag])
            .body(Expr::Read(0))
            .done();
        let cfg = SmemConfig {
            sample_params: vec![16],
            must_copy_all: true,
            ..SmemConfig::default()
        };
        Arc::new(analyze_symbolic(&b.build().unwrap(), &[], &cfg).unwrap())
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let lru = PlanLru::new(2);
        lru.insert("a".into(), plan(0));
        lru.insert("b".into(), plan(1));
        assert!(lru.get("a").is_some()); // refresh a; b is now LRU
        lru.insert("c".into(), plan(2)); // evicts b
        assert!(lru.get("b").is_none());
        assert!(lru.get("a").is_some());
        assert!(lru.get("c").is_some());
        let s = lru.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 3);
        assert_eq!(s.resident, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn invalidate_clears_and_bumps_generation() {
        let lru = PlanLru::new(4);
        lru.insert("a".into(), plan(0));
        assert_eq!(lru.invalidate(), 1);
        assert!(lru.get("a").is_none());
        assert_eq!(lru.stats().resident, 0);
        assert_eq!(lru.invalidate(), 2);
    }
}
