//! A minimal JSON value type, parser and serializer.
//!
//! The build environment has no reachable crates-io mirror, so the
//! wire format is hand-rolled (precedent: `polymem analyze --json`
//! renders its dump manually). The subset is full JSON minus float
//! exponent edge cases the protocol never produces; parsing is
//! recursive-descent with a depth cap so a hostile client cannot blow
//! the stack.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`].
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last wins on
    /// lookup, both serialized — the protocol never emits duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value(0)?;
        p.ws();
        (p.i == p.b.len()).then_some(v)
    }

    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if this is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Render a string with JSON escaping.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e18 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Option<Json> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        match *self.b.get(self.i)? {
            b'n' => self.lit("null", Json::Null),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.eat(b']') {
                    return Some(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    if self.eat(b']') {
                        return Some(Json::Arr(items));
                    }
                    if !self.eat(b',') {
                        return None;
                    }
                }
            }
            b'{' => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.eat(b'}') {
                    return Some(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    if !self.eat(b':') {
                        return None;
                    }
                    self.ws();
                    fields.push((k, self.value(depth + 1)?));
                    self.ws();
                    if self.eat(b'}') {
                        return Some(Json::Obj(fields));
                    }
                    if !self.eat(b',') {
                        return None;
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match *self.b.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match *self.b.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.b.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            // Unpaired surrogates are rejected; the
                            // protocol is ASCII in practice.
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                c if c < 0x20 => return None,
                _ => {
                    // Re-borrow as str to step over multi-byte chars.
                    let rest = std::str::from_utf8(&self.b[self.i..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        self.eat(b'-');
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(r#"{"cmd":"run","kernel":"me","size":32,"hierarchy":true}"#).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("size").unwrap().as_i64(), Some(32));
        assert_eq!(v.get("hierarchy").unwrap().as_bool(), Some(true));
        assert!(v.get("absent").is_none());
    }

    #[test]
    fn round_trips_strings_and_nesting() {
        let src = r#"{"a":[1,-2,3.5],"b":{"c":"x\"y\\z\nw"},"d":null,"e":false}"#;
        let v = Json::parse(src).unwrap();
        let re = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "tru",
            "1e999",
            "nan",
            "[1]x",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_none(), "{bad}");
        }
        // Depth cap: 100 nested arrays.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_none());
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), r#""a\"b\\c\nd\u0001""#);
    }
}
