//! Polyhedral-core perf-regression harness.
//!
//! Runs the five built-in kernels through the full §3 analysis and the
//! blocked executor on the GPU and Cell machine models, twice each:
//! once with the optimized polyhedral core (greedy Fourier–Motzkin
//! ordering, interleaved pruning, simplex feasibility, projection
//! cache) and once in naive mode (the pre-optimization core, toggled
//! in-process). It then
//!
//! * writes `BENCH_polycore.json` — per-kernel compiler-side
//!   wall-clock for both modes (whole-program analysis, plus the
//!   polyhedral-core time across an analyze + blocked-execution
//!   workload as measured by the core's own timer), per-pass times, FM
//!   rows generated vs. pruned, and projection-cache hit rates — so
//!   the perf trajectory is tracked from this PR onward;
//! * verifies executor outputs are bit-exact between the two modes;
//! * checks the simplex emptiness verdict against the FM oracle on a
//!   deterministic batch of random constraint systems;
//! * (full mode) re-checks the fig. 4–8 qualitative shapes and asserts
//!   the compiler-side speedup on the ME and Jacobi-2D kernels is
//!   ≥ 2×.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin polycore            # full
//! cargo run --release -p polymem-bench --bin polycore -- --smoke # CI
//! ```
//!
//! Exits non-zero on any check failure. `--smoke` shrinks sizes and
//! skips the speedup assertion (timings on CI runners are noise) but
//! still fails on panics, output mismatches, or oracle disagreement.

use polymem_bench::harness::{best_of, conclude, json_escape_free, smoke_mode, store_for, Case};
use polymem_core::smem::{analyze_program_timed, PassTimes, SmemConfig};
use polymem_ir::ArrayStore;
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::{execute_blocked, MachineConfig};
use polymem_poly::cache::{poly_core_reset, poly_core_stats, set_naive_mode, PolyCoreStats};
use polymem_poly::{Constraint, Polyhedron, Space};
use std::time::Instant;

fn cases(smoke: bool) -> Vec<Case> {
    let mut out = Vec::new();

    let size = if smoke {
        me::MeSize {
            ni: 16,
            nj: 16,
            ws: 2,
        }
    } else {
        me::MeSize {
            ni: 32,
            nj: 32,
            ws: 3,
        }
    };
    let p = me::program();
    let prm = me::params(&size);
    out.push(Case {
        name: "me",
        base: store_for(&p, &prm, |st| me::init_store(st, 7)),
        program: p,
        kernel: me::blocked_kernel(2, 2, true),
        params: prm,
        check: "Sad",
    });

    let s = if smoke {
        jacobi::JacobiSize { n: 32, t: 2 }
    } else {
        jacobi::JacobiSize { n: 128, t: 4 }
    };
    let p = jacobi::program();
    let prm = jacobi::params(&s);
    out.push(Case {
        name: "jacobi",
        base: store_for(&p, &prm, |st| jacobi::init_store(st, 8)),
        program: p,
        kernel: jacobi::stepwise_kernel(2, true),
        params: prm,
        check: "A",
    });

    let (t, n) = if smoke { (2, 8) } else { (2, 16) };
    let p = jacobi2d::program();
    let prm = jacobi2d::params(t, n);
    out.push(Case {
        name: "jacobi2d",
        base: store_for(&p, &prm, |st| jacobi2d::init_store(st, 9)),
        program: p,
        kernel: jacobi2d::stepwise_kernel(4, 4, true),
        params: prm,
        check: "A",
    });

    let n = if smoke { 8 } else { 16 };
    let p = matmul::program();
    let prm = vec![n];
    out.push(Case {
        name: "matmul",
        base: store_for(&p, &prm, |st| matmul::init_store(st, 10)),
        program: p,
        kernel: matmul::blocked_kernel(4, 4, 4, true),
        params: prm,
        check: "C",
    });

    let s = if smoke {
        conv2d::ConvSize { n: 7, k: 3 }
    } else {
        conv2d::ConvSize { n: 15, k: 3 }
    };
    let p = conv2d::program();
    let prm = conv2d::params(&s);
    out.push(Case {
        name: "conv2d",
        base: store_for(&p, &prm, |st| conv2d::init_store(st, 11)),
        program: p,
        kernel: conv2d::blocked_kernel(3, 3, true),
        params: prm,
        check: "Out",
    });

    out
}

/// Best-of-`reps` wall-clock (ms) for one full analysis, each rep from
/// a cold projection cache so intra-analysis reuse — not cross-rep
/// warmth — is what gets measured. Returns the best time and the pass
/// breakdown of the final rep.
fn timed_analyze(case: &Case, reps: usize) -> (f64, PassTimes) {
    let config = SmemConfig {
        sample_params: case.params.clone(),
        ..SmemConfig::default()
    };
    let mut times = PassTimes::default();
    let (best, ()) = best_of(reps, || {
        poly_core_reset();
        let t0 = Instant::now();
        let (_, t) = analyze_program_timed(&case.program, &config).expect("analysis succeeds");
        times = t;
        (t0.elapsed().as_secs_f64() * 1e3, ())
    });
    (best, times)
}

/// Best-of-`reps` wall-clock (ms) spent **inside the polyhedral core**
/// across one fixed compiler workload: a whole-program analysis plus
/// one blocked execution on the GPU model. That covers every place the
/// core is exercised — the §3 passes, the per-block-shape symbolic
/// planning, and the per-block bound derivation the executor performs
/// when scanning domains. Measured via the core's own re-entrancy-safe
/// timer ([`PolyCoreStats::core_ns`]), so interpretation time (moving
/// words, evaluating statement bodies) is excluded. Each rep starts
/// from a cold cache; intra-workload reuse is part of what is measured.
fn timed_core(case: &Case, machine: &MachineConfig, reps: usize) -> f64 {
    let config = SmemConfig {
        sample_params: case.params.clone(),
        ..SmemConfig::default()
    };
    best_of(reps, || {
        poly_core_reset();
        analyze_program_timed(&case.program, &config).expect("analysis succeeds");
        let mut st = case.base.clone();
        execute_blocked(&case.kernel, &case.params, &mut st, machine, false)
            .expect("execution succeeds");
        (poly_core_stats().core_ms(), ())
    })
    .0
}

/// Best-of-`reps` executor wall-clock (ms); returns the final store for
/// bit-exactness comparison.
fn timed_exec(case: &Case, machine: &MachineConfig, reps: usize) -> (f64, ArrayStore) {
    best_of(reps, || {
        let mut st = case.base.clone();
        let t0 = Instant::now();
        execute_blocked(&case.kernel, &case.params, &mut st, machine, false)
            .expect("execution succeeds");
        (t0.elapsed().as_secs_f64() * 1e3, st)
    })
}

struct KernelResult {
    name: &'static str,
    analyze_fast_ms: f64,
    analyze_naive_ms: f64,
    core_fast_ms: f64,
    core_naive_ms: f64,
    pass_ms: Vec<(&'static str, f64)>,
    stats: PolyCoreStats,
    machines: Vec<MachineResult>,
}

struct MachineResult {
    machine: &'static str,
    run_fast_ms: f64,
    run_naive_ms: f64,
    bit_exact: bool,
}

impl KernelResult {
    /// Compiler-side speedup: polyhedral-core wall-clock over the
    /// fixed analyze + blocked-execution workload, naive over fast.
    /// This is the quantity the ≥2× regression gate asserts.
    fn speedup(&self) -> f64 {
        self.core_naive_ms / self.core_fast_ms.max(1e-9)
    }
}

fn bench_kernel(case: &Case, reps: usize) -> KernelResult {
    set_naive_mode(false);
    let (analyze_fast_ms, times) = timed_analyze(case, reps);
    // Stats snapshot for one cold fast analysis.
    poly_core_reset();
    let config = SmemConfig {
        sample_params: case.params.clone(),
        ..SmemConfig::default()
    };
    analyze_program_timed(&case.program, &config).expect("analysis succeeds");
    let stats = poly_core_stats();

    set_naive_mode(true);
    let (analyze_naive_ms, _) = timed_analyze(case, reps);
    set_naive_mode(false);

    // Polyhedral-core time over the fixed workload, measured on the
    // GPU model (the machine only changes scratchpad capacity, not the
    // shape of the polyhedral work).
    let core_cfg = MachineConfig::geforce_8800_gtx();
    let core_fast_ms = timed_core(case, &core_cfg, reps);
    set_naive_mode(true);
    let core_naive_ms = timed_core(case, &core_cfg, reps);
    set_naive_mode(false);

    let pass_ms = vec![
        ("dataspace", times.dataspace.as_secs_f64() * 1e3),
        ("partition", times.partition.as_secs_f64() * 1e3),
        ("reuse", times.reuse.as_secs_f64() * 1e3),
        ("alloc", times.alloc.as_secs_f64() * 1e3),
        ("movement", times.movement.as_secs_f64() * 1e3),
        // Zero for the level-1-only analysis timed here; present so the
        // report's pass set matches PassTimes and picks the hierarchy
        // pass up wherever two-level planning is timed.
        ("hierarchy", times.hierarchy.as_secs_f64() * 1e3),
    ];

    let mut machines = Vec::new();
    for (label, cfg) in [
        ("gpu", MachineConfig::geforce_8800_gtx()),
        ("cell", MachineConfig::cell_like()),
    ] {
        set_naive_mode(false);
        let (run_fast_ms, st_fast) = timed_exec(case, &cfg, reps);
        set_naive_mode(true);
        let (run_naive_ms, st_naive) = timed_exec(case, &cfg, reps);
        set_naive_mode(false);
        let bit_exact =
            st_fast.data(case.check).expect("output") == st_naive.data(case.check).expect("output");
        machines.push(MachineResult {
            machine: label,
            run_fast_ms,
            run_naive_ms,
            bit_exact,
        });
    }

    KernelResult {
        name: case.name,
        analyze_fast_ms,
        analyze_naive_ms,
        core_fast_ms,
        core_naive_ms,
        pass_ms,
        stats,
        machines,
    }
}

/// Deterministic LCG over random small systems, checking the sound
/// direction of the emptiness invariant: whenever the optimized test
/// (simplex + shortcuts) claims empty, the naive FM oracle must agree.
/// The converse can differ legitimately — FM integer-tightens constants
/// at every elimination step, so it proves *integer* emptiness of some
/// rationally-feasible systems; those cases are counted separately and
/// reported as informational.
fn oracle_check(systems: usize) -> (usize, usize, usize) {
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut disagreements = 0usize;
    let mut tightening_extra = 0usize;
    for _ in 0..systems {
        let n_dims = 1 + next(3) as usize;
        let n_params = next(3) as usize;
        let n_rows = 2 + next(6) as usize;
        let cols = n_dims + n_params + 1;
        let rows: Vec<Constraint> = (0..n_rows)
            .map(|_| {
                let coeffs: Vec<i64> = (0..cols).map(|_| next(9) as i64 - 4).collect();
                if next(4) == 0 {
                    Constraint::eq(coeffs)
                } else {
                    Constraint::ineq(coeffs)
                }
            })
            .collect();
        let p = Polyhedron::new(Space::anon(n_dims, n_params), rows);
        set_naive_mode(false);
        let fast = p.is_empty().expect("simplex path");
        set_naive_mode(true);
        let naive = p.is_empty().expect("fm path");
        set_naive_mode(false);
        if fast && !naive {
            // Unsound: the fast path may never claim empty when the
            // tighter FM oracle still finds the system satisfiable.
            disagreements += 1;
            eprintln!("oracle disagreement (simplex=empty, fm=non-empty) on {p:?}");
        } else if !fast && naive {
            tightening_extra += 1;
        }
    }
    (systems, disagreements, tightening_extra)
}

/// Re-check the fig. 4–8 qualitative shapes (full mode only; these run
/// tile searches and are too slow for CI smoke).
fn figures_ok() -> bool {
    let mut ok = true;
    let mut check = |cond: bool, what: &str| {
        if !cond {
            eprintln!("figure shape check failed: {what}");
            ok = false;
        }
    };
    let ratio = |f: &polymem_bench::Figure, a: usize, b: usize, x: f64| {
        f.series[a].at(x).unwrap() / f.series[b].at(x).unwrap()
    };

    let f4 = polymem_bench::figure4();
    let x = (16u64 << 20) as f64;
    check(
        (3.0..30.0).contains(&ratio(&f4, 0, 1, x)),
        "fig4 dram/smem ratio",
    );
    check(ratio(&f4, 2, 1, x) > 30.0, "fig4 cpu/smem ratio");

    let f5 = polymem_bench::figure5();
    let x = (256u64 << 10) as f64;
    check(
        (3.0..40.0).contains(&ratio(&f5, 0, 1, x)),
        "fig5 dram/smem ratio",
    );
    check(ratio(&f5, 2, 1, x) > 4.0, "fig5 cpu/smem ratio");

    let f6 = polymem_bench::figure6();
    let x = (16u64 << 20) as f64;
    let best = f6
        .series
        .iter()
        .min_by(|a, b| a.at(x).unwrap().total_cmp(&b.at(x).unwrap()))
        .unwrap();
    check(best.label == "Tile Size = 32,16,16,16", "fig6 best tile");

    let f7 = polymem_bench::figure7();
    for s in &f7.series {
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        let min = s
            .points
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min);
        check(min < first && min < last, "fig7 U shape");
        let arg = s.argmin().unwrap();
        check(arg > 25.0 && arg < 256.0, "fig7 interior argmin");
    }

    let f8 = polymem_bench::figure8();
    let x = (256u64 << 10) as f64;
    let best = f8
        .series
        .iter()
        .min_by(|a, b| a.at(x).unwrap().total_cmp(&b.at(x).unwrap()))
        .unwrap();
    check(best.label == "Tile Size = 32,256", "fig8 best tile");

    ok
}

fn render_json(
    mode: &str,
    kernels: &[KernelResult],
    oracle: (usize, usize, usize),
    figures: Option<bool>,
    target: f64,
    pass: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n",
            json_escape_free(k.name)
        ));
        out.push_str(&format!(
            "      \"analyze_ms_fast\": {:.4},\n      \"analyze_ms_naive\": {:.4},\n",
            k.analyze_fast_ms, k.analyze_naive_ms,
        ));
        out.push_str(&format!(
            "      \"core_ms_fast\": {:.4},\n      \"core_ms_naive\": {:.4},\n      \"compiler_speedup\": {:.3},\n",
            k.core_fast_ms,
            k.core_naive_ms,
            k.speedup()
        ));
        out.push_str("      \"pass_ms\": {");
        for (j, (name, ms)) in k.pass_ms.iter().enumerate() {
            out.push_str(&format!(
                "{}\"{}\": {:.4}",
                if j == 0 { " " } else { ", " },
                json_escape_free(name),
                ms
            ));
        }
        out.push_str(" },\n");
        out.push_str(&format!(
            "      \"cache_hits\": {},\n      \"cache_misses\": {},\n      \"cache_hit_rate\": {:.4},\n",
            k.stats.cache_hits,
            k.stats.cache_misses,
            k.stats.hit_rate()
        ));
        out.push_str(&format!(
            "      \"fm_rows_generated\": {},\n      \"fm_rows_pruned\": {},\n",
            k.stats.fm_rows_generated, k.stats.fm_rows_pruned
        ));
        out.push_str("      \"runs\": [\n");
        for (j, m) in k.machines.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"machine\": \"{}\", \"run_ms_fast\": {:.4}, \"run_ms_naive\": {:.4}, \"bit_exact\": {} }}{}\n",
                json_escape_free(m.machine),
                m.run_fast_ms,
                m.run_naive_ms,
                m.bit_exact,
                if j + 1 == k.machines.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"emptiness_oracle\": {{ \"systems\": {}, \"disagreements\": {}, \"fm_tightening_extra\": {} }},\n",
        oracle.0, oracle.1, oracle.2
    ));
    match figures {
        Some(ok) => out.push_str(&format!("  \"figures_ok\": {ok},\n")),
        None => out.push_str("  \"figures_ok\": null,\n"),
    }
    out.push_str(&format!(
        "  \"speedup_target\": {target:.1},\n  \"pass\": {pass}\n}}\n"
    ));
    out
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    let reps = if smoke { 2 } else { 3 };
    let target = 2.0;

    println!("polycore perf harness ({mode} mode, best of {reps})\n");
    let mut results = Vec::new();
    for case in cases(smoke) {
        let r = bench_kernel(&case, reps);
        println!(
            "{:<9} analyze {:8.2} ms fast / {:8.2} ms naive   cache {}/{} ({:.0}%)  fm {} gen / {} pruned",
            r.name,
            r.analyze_fast_ms,
            r.analyze_naive_ms,
            r.stats.cache_hits,
            r.stats.cache_hits + r.stats.cache_misses,
            100.0 * r.stats.hit_rate(),
            r.stats.fm_rows_generated,
            r.stats.fm_rows_pruned,
        );
        println!(
            "          core    {:8.2} ms fast / {:8.2} ms naive   compiler-side speedup {:5.2}x",
            r.core_fast_ms,
            r.core_naive_ms,
            r.speedup(),
        );
        for m in &r.machines {
            println!(
                "          run[{:<4}] {:8.2} ms fast / {:8.2} ms naive  bit-exact: {}",
                m.machine,
                m.run_fast_ms,
                m.run_naive_ms,
                if m.bit_exact { "yes" } else { "NO" }
            );
        }
        results.push(r);
    }

    let systems = if smoke { 100 } else { 400 };
    let oracle = oracle_check(systems);
    println!(
        "\nemptiness oracle: {} systems, {} disagreements, {} FM-tightening extras",
        oracle.0, oracle.1, oracle.2
    );

    let figures = if smoke { None } else { Some(figures_ok()) };
    if let Some(ok) = figures {
        println!("figure shapes (4-8): {}", if ok { "ok" } else { "FAILED" });
    }

    let mut failures = Vec::new();
    for r in &results {
        for m in r.machines.iter().filter(|m| !m.bit_exact) {
            failures.push(format!(
                "{}[{}]: fast/naive output mismatch",
                r.name, m.machine
            ));
        }
    }
    if oracle.1 != 0 {
        failures.push(format!("emptiness oracle: {} disagreements", oracle.1));
    }
    if figures == Some(false) {
        failures.push("figure shape checks failed".into());
    }
    let speedup_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.speedup())
            .unwrap_or(0.0)
    };
    if !smoke {
        println!(
            "asserted compiler-side speedups: me {:.2}x, jacobi2d {:.2}x (target >= {target}x)",
            speedup_of("me"),
            speedup_of("jacobi2d")
        );
        for name in ["me", "jacobi2d"] {
            if speedup_of(name) < target {
                failures.push(format!(
                    "{name}: compiler-side speedup {:.2}x below {target}x",
                    speedup_of(name)
                ));
            }
        }
    }

    let json = render_json(mode, &results, oracle, figures, target, failures.is_empty());
    conclude("BENCH_polycore.json", &json, &failures);
}
