//! DMA transfer-engine harness.
//!
//! Runs the five built-in kernels — mapped with a sequential sub-tile
//! loop where the kernel has one (ME, Jacobi-2D, matmul, conv2d; the
//! 1-D Jacobi keeps its round-only mapping and exercises the
//! double-buffer fallback) — on the GPU and Cell machine models, with
//! double buffering off and on. It then
//!
//! * writes `BENCH_dma.json` — per kernel × machine × mode: modeled
//!   cycles, element-move counts vs. coalesced DMA descriptors,
//!   bytes per descriptor, overlap fraction, and the prefetch /
//!   forced-sync group counts;
//! * verifies outputs are bit-exact against the reference interpreter
//!   and between the two modes;
//! * asserts the coalescer turns per-element movement into at least
//!   10× fewer transfer operations (aggregate, per machine);
//! * asserts double buffering improves modeled time on the Jacobi-2D
//!   and matmul kernels, and reports a nonzero overlap fraction on
//!   every kernel that has a sequential sub-tile loop.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin dma            # full
//! cargo run --release -p polymem-bench --bin dma -- --smoke # CI
//! ```
//!
//! Exits non-zero on any check failure. All asserted quantities are
//! modeled (deterministic integer cycle counts), so the gates hold on
//! noisy CI runners too.

use polymem_bench::harness::{conclude, json_escape_free, smoke_mode, store_for, Case};
use polymem_ir::ArrayStore;
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::{execute_blocked, ExecStats, MachineConfig};

fn cases(smoke: bool) -> Vec<Case> {
    let mut out = Vec::new();

    let size = if smoke {
        me::MeSize {
            ni: 16,
            nj: 16,
            ws: 2,
        }
    } else {
        me::MeSize {
            ni: 32,
            nj: 32,
            ws: 3,
        }
    };
    let p = me::program();
    let prm = me::params(&size);
    out.push(Case {
        name: "me",
        base: store_for(&p, &prm, |st| me::init_store(st, 7)),
        program: p,
        kernel: me::blocked_seq_kernel(4, 4, true),
        params: prm,
        check: "Sad",
    });

    let s = if smoke {
        jacobi::JacobiSize { n: 32, t: 2 }
    } else {
        jacobi::JacobiSize { n: 128, t: 4 }
    };
    let p = jacobi::program();
    let prm = jacobi::params(&s);
    out.push(Case {
        name: "jacobi",
        base: store_for(&p, &prm, |st| jacobi::init_store(st, 8)),
        program: p,
        kernel: jacobi::stepwise_kernel(16, true),
        params: prm,
        check: "A",
    });

    let (t, n) = if smoke { (2, 8) } else { (2, 16) };
    let p = jacobi2d::program();
    let prm = jacobi2d::params(t, n);
    out.push(Case {
        name: "jacobi2d",
        base: store_for(&p, &prm, |st| jacobi2d::init_store(st, 9)),
        program: p,
        kernel: jacobi2d::stepwise_seq_kernel(4, if smoke { 4 } else { 8 }, true),
        params: prm,
        check: "A",
    });

    let n = if smoke { 8 } else { 16 };
    let p = matmul::program();
    let prm = vec![n];
    out.push(Case {
        name: "matmul",
        base: store_for(&p, &prm, |st| matmul::init_store(st, 10)),
        program: p,
        kernel: matmul::blocked_kernel_hoisted(4, 4, 4, true),
        params: prm,
        check: "C",
    });

    let s = if smoke {
        conv2d::ConvSize { n: 7, k: 3 }
    } else {
        conv2d::ConvSize { n: 15, k: 3 }
    };
    let p = conv2d::program();
    let prm = conv2d::params(&s);
    out.push(Case {
        name: "conv2d",
        base: store_for(&p, &prm, |st| conv2d::init_store(st, 11)),
        program: p,
        kernel: conv2d::blocked_seq_kernel(3, if smoke { 3 } else { 5 }, true),
        params: prm,
        check: "Out",
    });

    out
}

struct ModeResult {
    stats: ExecStats,
    store: ArrayStore,
    /// Bytes moved through global memory: staged element moves plus
    /// direct (unstaged) accesses, at the machine's word size.
    global_bytes: u64,
    word_bytes: u64,
}

struct MachineResult {
    machine: &'static str,
    off: ModeResult,
    on: ModeResult,
    bit_exact: bool,
}

struct KernelResult {
    name: &'static str,
    has_seq: bool,
    machines: Vec<MachineResult>,
}

impl MachineResult {
    /// Modeled-time ratio, synchronous over double-buffered (>1 means
    /// the overlap helped).
    fn improvement(&self) -> f64 {
        self.off.stats.modeled_cycles as f64 / self.on.stats.modeled_cycles.max(1) as f64
    }
}

fn element_moves(s: &ExecStats) -> u64 {
    s.moved_in + s.moved_out
}

/// Every word that crosses the global-memory interface: DMA-staged
/// moves and the per-element reads/writes of unstaged references.
fn global_bytes(s: &ExecStats, word_bytes: u64) -> u64 {
    (element_moves(s) + s.global_reads + s.global_writes) * word_bytes
}

fn run_case(case: &Case) -> KernelResult {
    let reference = case.reference();
    let mut machines = Vec::new();
    for (label, cfg) in [
        ("gpu", MachineConfig::geforce_8800_gtx()),
        ("cell", MachineConfig::cell_like()),
    ] {
        let run = |double_buffer: bool| {
            let mut config = cfg.clone();
            config.double_buffer = double_buffer;
            let mut store = case.base.clone();
            let stats = execute_blocked(&case.kernel, &case.params, &mut store, &config, false)
                .expect("execution succeeds");
            let gb = global_bytes(&stats, config.word_bytes);
            ModeResult {
                stats,
                store,
                global_bytes: gb,
                word_bytes: config.word_bytes,
            }
        };
        let off = run(false);
        let on = run(true);
        let bit_exact = case.output_matches(&off.store, &reference)
            && case.output_matches(&on.store, &reference);
        machines.push(MachineResult {
            machine: label,
            off,
            on,
            bit_exact,
        });
    }
    KernelResult {
        name: case.name,
        has_seq: !case.kernel.seq_dims.is_empty(),
        machines,
    }
}

fn mode_json(m: &ModeResult) -> String {
    let s = &m.stats;
    format!(
        "{{ \"modeled_cycles\": {}, \"element_moves\": {}, \"descriptors\": {}, \
         \"dma_bytes\": {}, \"global_bytes\": {}, \"mean_descriptor_bytes\": {:.2}, \
         \"overlap_fraction\": {:.4}, \
         \"stall_cycles\": {}, \"overlap_groups\": {}, \"sync_groups\": {} }}",
        s.modeled_cycles,
        element_moves(s),
        s.dma.descriptors,
        s.dma.bytes,
        m.global_bytes,
        s.dma.mean_descriptor_bytes(),
        s.dma.overlap_fraction(),
        s.dma.stall_cycles,
        s.overlap_groups,
        s.sync_groups,
    )
}

fn render_json(
    mode: &str,
    kernels: &[KernelResult],
    coalesce_ratio: f64,
    ratio_target: f64,
    pass: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n      \"has_seq\": {},\n",
            json_escape_free(k.name),
            k.has_seq
        ));
        out.push_str("      \"runs\": [\n");
        for (j, m) in k.machines.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"machine\": \"{}\",\n          \"sync\": {},\n          \"double_buffer\": {},\n          \"bit_exact\": {}, \"modeled_improvement\": {:.4} }}{}\n",
                json_escape_free(m.machine),
                mode_json(&m.off),
                mode_json(&m.on),
                m.bit_exact,
                m.improvement(),
                if j + 1 == k.machines.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"coalesce_ratio\": {coalesce_ratio:.2},\n  \"coalesce_target\": {ratio_target:.1},\n  \"pass\": {pass}\n}}\n"
    ));
    out
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    let ratio_target = 10.0;

    println!("dma transfer-engine harness ({mode} mode)\n");
    let mut results = Vec::new();
    for case in cases(smoke) {
        let r = run_case(&case);
        for m in &r.machines {
            println!(
                "{:<9} [{:<4}] modeled {:>9} -> {:>9} cycles ({:4.2}x)  moves {:>6} descs {:>5} ({:5.1} B/desc)  overlap {:4.1}%  groups {}+{}  bit-exact: {}",
                r.name,
                m.machine,
                m.off.stats.modeled_cycles,
                m.on.stats.modeled_cycles,
                m.improvement(),
                element_moves(&m.on.stats),
                m.on.stats.dma.descriptors,
                m.on.stats.dma.mean_descriptor_bytes(),
                100.0 * m.on.stats.dma.overlap_fraction(),
                m.on.stats.overlap_groups,
                m.on.stats.sync_groups,
                if m.bit_exact { "yes" } else { "NO" },
            );
            println!(
                "{:<9} [{:<4}] global traffic {} bytes sync / {} bytes double-buffered",
                r.name, m.machine, m.off.global_bytes, m.on.global_bytes,
            );
        }
        results.push(r);
    }

    let mut failures = Vec::new();

    // Everything bit-exact, both modes, both machines.
    for r in &results {
        for m in &r.machines {
            if !m.bit_exact {
                failures.push(format!("{}[{}]: output mismatch", r.name, m.machine));
            }
        }
    }

    // Traffic accounting in bytes: every staged element crosses the
    // global interface through exactly one coalesced descriptor, so
    // descriptor bytes must equal element-move bytes; and overlapping
    // the transfers (double buffering) must not change how many bytes
    // touch global memory.
    for r in &results {
        for m in &r.machines {
            for (mode, res) in [("sync", &m.off), ("dbuf", &m.on)] {
                let move_bytes = element_moves(&res.stats) * res.word_bytes;
                if res.stats.dma.bytes != move_bytes {
                    failures.push(format!(
                        "{}[{} {mode}]: descriptor bytes {} != element-move bytes {}",
                        r.name, m.machine, res.stats.dma.bytes, move_bytes
                    ));
                }
            }
            if m.off.global_bytes != m.on.global_bytes {
                failures.push(format!(
                    "{}[{}]: double buffering changed global traffic ({} -> {} bytes)",
                    r.name, m.machine, m.off.global_bytes, m.on.global_bytes
                ));
            }
        }
    }

    // Coalescing: aggregate element moves over DMA descriptors (the
    // per-element baseline would issue one operation per element).
    let moves: u64 = results
        .iter()
        .flat_map(|r| &r.machines)
        .map(|m| element_moves(&m.on.stats))
        .sum();
    let descs: u64 = results
        .iter()
        .flat_map(|r| &r.machines)
        .map(|m| m.on.stats.dma.descriptors)
        .sum();
    let coalesce_ratio = moves as f64 / descs.max(1) as f64;
    println!(
        "\ncoalescing: {moves} element moves in {descs} descriptors ({coalesce_ratio:.1}x, target >= {ratio_target}x)"
    );
    if coalesce_ratio < ratio_target {
        failures.push(format!(
            "coalesce ratio {coalesce_ratio:.1} below {ratio_target}"
        ));
    }

    // Double buffering must improve modeled time on the two kernels
    // the paper's pipelining discussion centres on.
    for name in ["jacobi2d", "matmul"] {
        let r = results.iter().find(|r| r.name == name).expect("case");
        for m in &r.machines {
            if m.on.stats.modeled_cycles >= m.off.stats.modeled_cycles {
                failures.push(format!(
                    "{name}[{}]: no modeled-time improvement ({} -> {})",
                    m.machine, m.off.stats.modeled_cycles, m.on.stats.modeled_cycles
                ));
            }
        }
    }

    // Every seq-mapped kernel must actually overlap transfers.
    for r in results.iter().filter(|r| r.has_seq) {
        for m in &r.machines {
            if m.on.stats.overlap_groups == 0 {
                failures.push(format!("{}[{}]: no prefetches issued", r.name, m.machine));
            }
            if m.on.stats.dma.overlap_fraction() <= 0.0 {
                failures.push(format!("{}[{}]: zero overlap fraction", r.name, m.machine));
            }
        }
    }
    // The round-only 1-D Jacobi exercises the fallback: double_buffer
    // on, nothing to pipeline, still bit-exact with zero prefetches.
    let j = results.iter().find(|r| r.name == "jacobi").expect("case");
    if j.machines.iter().any(|m| m.on.stats.overlap_groups != 0) {
        failures.push("jacobi: round-only kernel should not prefetch".into());
    }

    let json = render_json(
        mode,
        &results,
        coalesce_ratio,
        ratio_target,
        failures.is_empty(),
    );
    conclude("BENCH_dma.json", &json, &failures);
}
