//! Reproduce the paper's Figure 8 (see EXPERIMENTS.md).
fn main() {
    print!("{}", polymem_bench::figure8().to_table());
}
