//! Reproduce the paper's Figure 6 (see EXPERIMENTS.md).
fn main() {
    print!("{}", polymem_bench::figure6().to_table());
}
