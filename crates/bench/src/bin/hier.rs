//! Multi-level hierarchy harness.
//!
//! Runs the five built-in kernels on the GPU and Cell machine models
//! with the register-tile level off (scratchpad-only staging) and on
//! (`MachineConfig::hierarchy`: the §3 pipeline re-run over the
//! intra-thread subnest, staging per-inner-process register frames),
//! then
//!
//! * verifies outputs are bit-exact against the reference interpreter
//!   in both modes — with hierarchy on, every read served from a frame
//!   and every write flushed through one must land exactly where the
//!   scratchpad-only path puts it;
//! * measures modeled scratchpad traffic (compute-phase accesses plus
//!   frame staging) in both modes, and asserts the register level cuts
//!   it by at least 2x on matmul and ME — the two kernels whose
//!   inner-process reuse the paper's recursion argument centres on —
//!   in smoke and full mode alike (the quantity is a deterministic
//!   counter, so tiny CI sizes gate as reliably as full sizes);
//! * reports the new hierarchy counters (`smem_loads_saved`,
//!   `reg_bytes_moved`, `hier_groups`) and the modeled-cycle
//!   improvement;
//! * writes `BENCH_hier.json` with the per-kernel numbers.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin hier            # full
//! cargo run --release -p polymem-bench --bin hier -- --smoke # CI
//! ```
//!
//! `POLYMEM_EXEC_CHECK=1` additionally runs the reference interpreter
//! as an oracle beside every compiled block — hierarchy-on plans
//! included, now that the compiled engine executes them natively —
//! and panics on divergence; the CI job sets it.
//!
//! Exits non-zero on any check failure. All gated quantities are
//! deterministic counters, so the gates hold on noisy CI runners too.

use polymem_bench::harness::{best_of, conclude, json_escape_free, smoke_mode, store_for, Case};
use polymem_ir::ArrayStore;
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::{execute_blocked, ExecStats, MachineConfig};

fn cases(smoke: bool) -> Vec<Case> {
    let mut out = Vec::new();

    let size = if smoke {
        me::MeSize {
            ni: 16,
            nj: 16,
            ws: 2,
        }
    } else {
        me::MeSize {
            ni: 32,
            nj: 32,
            ws: 3,
        }
    };
    let p = me::program();
    let prm = me::params(&size);
    out.push(Case {
        name: "me",
        base: store_for(&p, &prm, |st| me::init_store(st, 7)),
        program: p,
        kernel: me::blocked_seq_kernel(4, 4, true),
        params: prm,
        check: "Sad",
    });

    let s = if smoke {
        jacobi::JacobiSize { n: 32, t: 2 }
    } else {
        jacobi::JacobiSize { n: 256, t: 4 }
    };
    let p = jacobi::program();
    let prm = jacobi::params(&s);
    out.push(Case {
        name: "jacobi",
        base: store_for(&p, &prm, |st| jacobi::init_store(st, 8)),
        program: p,
        kernel: jacobi::stepwise_kernel(16, true),
        params: prm,
        check: "A",
    });

    let (t, n) = if smoke { (2, 8) } else { (4, 32) };
    let p = jacobi2d::program();
    let prm = jacobi2d::params(t, n);
    out.push(Case {
        name: "jacobi2d",
        base: store_for(&p, &prm, |st| jacobi2d::init_store(st, 9)),
        program: p,
        kernel: jacobi2d::stepwise_seq_kernel(4, if smoke { 4 } else { 8 }, true),
        params: prm,
        check: "A",
    });

    let n = if smoke { 8 } else { 32 };
    let p = matmul::program();
    let prm = vec![n];
    out.push(Case {
        name: "matmul",
        base: store_for(&p, &prm, |st| matmul::init_store(st, 10)),
        program: p,
        kernel: matmul::blocked_kernel_hoisted(
            if smoke { 4 } else { 8 },
            if smoke { 4 } else { 8 },
            if smoke { 4 } else { 8 },
            true,
        ),
        params: prm,
        check: "C",
    });

    let s = if smoke {
        conv2d::ConvSize { n: 7, k: 3 }
    } else {
        conv2d::ConvSize { n: 23, k: 3 }
    };
    let p = conv2d::program();
    let prm = conv2d::params(&s);
    out.push(Case {
        name: "conv2d",
        base: store_for(&p, &prm, |st| conv2d::init_store(st, 11)),
        program: p,
        kernel: conv2d::blocked_seq_kernel(3, if smoke { 3 } else { 5 }, true),
        params: prm,
        check: "Out",
    });

    out
}

struct ModeResult {
    stats: ExecStats,
    store: ArrayStore,
}

struct MachineResult {
    machine: &'static str,
    off: ModeResult,
    on: ModeResult,
    bit_exact: bool,
}

struct KernelResult {
    name: &'static str,
    machines: Vec<MachineResult>,
}

/// Modeled scratchpad traffic: compute-phase accesses plus the level-2
/// staging reads/writes. This is the quantity the register level
/// exists to shrink.
fn smem_traffic(s: &ExecStats) -> u64 {
    s.smem_reads + s.smem_writes
}

impl MachineResult {
    /// Scratchpad-traffic ratio, hierarchy-off over hierarchy-on
    /// (>1 means the register level cut traffic).
    fn traffic_reduction(&self) -> f64 {
        smem_traffic(&self.off.stats) as f64 / smem_traffic(&self.on.stats).max(1) as f64
    }

    /// Modeled-time ratio, off over on.
    fn modeled_improvement(&self) -> f64 {
        self.off.stats.modeled_cycles as f64 / self.on.stats.modeled_cycles.max(1) as f64
    }
}

fn run_mode(case: &Case, cfg: &MachineConfig, hierarchy: bool) -> ModeResult {
    let mut config = cfg.clone();
    config.hierarchy = hierarchy;
    let (_, (stats, store)) = best_of(3, || {
        let mut store = case.base.clone();
        let stats = execute_blocked(&case.kernel, &case.params, &mut store, &config, false)
            .expect("execution succeeds");
        (stats.compute_ns as f64, (stats, store))
    });
    ModeResult { stats, store }
}

fn run_case(case: &Case) -> KernelResult {
    let reference = case.reference();
    let mut machines = Vec::new();
    for (label, cfg) in [
        ("gpu", MachineConfig::geforce_8800_gtx()),
        ("cell", MachineConfig::cell_like()),
    ] {
        let off = run_mode(case, &cfg, false);
        let on = run_mode(case, &cfg, true);
        let bit_exact = case.output_matches(&off.store, &reference)
            && case.output_matches(&on.store, &reference);
        machines.push(MachineResult {
            machine: label,
            off,
            on,
            bit_exact,
        });
    }
    KernelResult {
        name: case.name,
        machines,
    }
}

fn mode_json(m: &ModeResult) -> String {
    let s = &m.stats;
    format!(
        "{{ \"smem_traffic\": {}, \"smem_reads\": {}, \"smem_writes\": {}, \
         \"smem_loads_saved\": {}, \"reg_bytes_moved\": {}, \"hier_groups\": {}, \
         \"modeled_cycles\": {} }}",
        smem_traffic(s),
        s.smem_reads,
        s.smem_writes,
        s.smem_loads_saved,
        s.reg_bytes_moved,
        s.hier_groups,
        s.modeled_cycles,
    )
}

fn render_json(mode: &str, kernels: &[KernelResult], target: f64, pass: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n      \"runs\": [\n",
            json_escape_free(k.name)
        ));
        for (j, m) in k.machines.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"machine\": \"{}\",\n          \"off\": {},\n          \"on\": {},\n          \
                 \"bit_exact\": {}, \"traffic_reduction\": {:.4}, \"modeled_improvement\": {:.4} }}{}\n",
                json_escape_free(m.machine),
                mode_json(&m.off),
                mode_json(&m.on),
                m.bit_exact,
                m.traffic_reduction(),
                m.modeled_improvement(),
                if j + 1 == k.machines.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"traffic_target\": {target:.1},\n  \"pass\": {pass}\n}}\n"
    ));
    out
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    let target = 2.0;
    let check = std::env::var("POLYMEM_EXEC_CHECK").is_ok_and(|v| v == "1");

    println!(
        "multi-level hierarchy harness ({mode} mode{})\n",
        if check { ", oracle cross-check on" } else { "" }
    );
    let mut results = Vec::new();
    for case in cases(smoke) {
        let r = run_case(&case);
        for m in &r.machines {
            println!(
                "{:<9} [{:<4}] smem {:>8} -> {:>8} ({:5.2}x)  saved {:>7}  reg B {:>8}  groups {:>5}  modeled {:4.2}x  bit-exact: {}",
                r.name,
                m.machine,
                smem_traffic(&m.off.stats),
                smem_traffic(&m.on.stats),
                m.traffic_reduction(),
                m.on.stats.smem_loads_saved,
                m.on.stats.reg_bytes_moved,
                m.on.stats.hier_groups,
                m.modeled_improvement(),
                if m.bit_exact { "yes" } else { "NO" },
            );
        }
        results.push(r);
    }

    let mut failures = Vec::new();

    // Both modes bit-exact against the reference, every kernel, both
    // machines.
    for r in &results {
        for m in r.machines.iter().filter(|m| !m.bit_exact) {
            failures.push(format!("{}[{}]: output mismatch", r.name, m.machine));
        }
    }

    // The traffic gate: the register level must cut modeled scratchpad
    // traffic at least `target`x on matmul and ME, and must actually
    // have staged frames to do it. Deterministic counters — gated in
    // smoke mode too.
    for name in ["matmul", "me"] {
        let r = results.iter().find(|r| r.name == name).expect("case");
        for m in &r.machines {
            if m.on.stats.hier_groups == 0 {
                failures.push(format!("{name}[{}]: no register frames staged", m.machine));
            }
            if m.on.stats.smem_loads_saved == 0 {
                failures.push(format!("{name}[{}]: no scratchpad loads saved", m.machine));
            }
            if m.traffic_reduction() < target {
                failures.push(format!(
                    "{name}[{}]: traffic reduction {:.2}x below {target}x",
                    m.machine,
                    m.traffic_reduction()
                ));
            }
            // Less scratchpad traffic at identical functional global
            // traffic can only lower the modeled time.
            if m.on.stats.modeled_cycles > m.off.stats.modeled_cycles {
                failures.push(format!(
                    "{name}[{}]: modeled time regressed ({} -> {})",
                    m.machine, m.off.stats.modeled_cycles, m.on.stats.modeled_cycles
                ));
            }
        }
    }

    let json = render_json(mode, &results, target, failures.is_empty());
    conclude("BENCH_hier.json", &json, &failures);
}
