//! Reproduce the paper's Figure 4 (see EXPERIMENTS.md).
fn main() {
    print!("{}", polymem_bench::figure4().to_table());
}
