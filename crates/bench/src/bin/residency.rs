//! Inter-block residency / delta-transfer harness.
//!
//! Runs the five built-in kernels on the GPU and Cell machine models,
//! synchronous and double-buffered, with the residency pass off and
//! on. The Jacobi-2D case uses the paper's Fig. 1 buffer layout (one
//! buffer per array over the convex union, `partition = false`) so the
//! stencil's sliding window lives in a single group. It then
//!
//! * writes `BENCH_residency.json` — per kernel × machine × mode: the
//!   move-in global traffic (elements and bytes), DMA bytes, retained
//!   and delta element counters, residency group instances and modeled
//!   cycles for both settings;
//! * verifies outputs are bit-exact against the reference interpreter
//!   and between the two settings in every mode;
//! * asserts residency cuts move-in global traffic by at least 2x on
//!   the two sliding-window kernels (ME and Jacobi-2D) on every
//!   machine and mode;
//! * asserts modeled cycles never regress with residency on, for any
//!   kernel, machine or mode;
//! * asserts the residency counters activate on the gated kernels and
//!   stay zero with the pass disabled;
//! * asserts the compiled engine keeps executing every block (zero
//!   interpreter fallbacks) with residency on.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin residency            # full
//! cargo run --release -p polymem-bench --bin residency -- --smoke # CI
//! ```
//!
//! All asserted quantities are modeled (deterministic integer counts),
//! so the gates hold on noisy CI runners too.

use polymem_bench::harness::{conclude, json_escape_free, smoke_mode, store_for, Case};
use polymem_ir::ArrayStore;
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::{execute_blocked, ExecStats, MachineConfig};

/// A harness case plus residency-specific knobs: whether the 2x
/// traffic gate applies, and whether to use the merged (Fig. 1)
/// buffer layout.
struct ResCase {
    case: Case,
    gated: bool,
    merged_layout: bool,
}

fn cases(smoke: bool) -> Vec<ResCase> {
    let mut out = Vec::new();

    // ME: the W-wide search window slides one column per sub-tile;
    // consecutive windows share W of W+1 columns.
    let size = if smoke {
        me::MeSize {
            ni: 8,
            nj: 8,
            ws: 4,
        }
    } else {
        me::MeSize {
            ni: 16,
            nj: 16,
            ws: 4,
        }
    };
    let p = me::program();
    let prm = me::params(&size);
    out.push(ResCase {
        case: Case {
            name: "me",
            base: store_for(&p, &prm, |st| me::init_store(st, 7)),
            program: p,
            kernel: me::blocked_seq_kernel(8, 1, true),
            params: prm,
            check: "Sad",
        },
        gated: true,
        merged_layout: false,
    });

    // 1-D Jacobi keeps its round-only mapping: no sequential sub-tile
    // loop, so residency must be a structural no-op.
    let s = if smoke {
        jacobi::JacobiSize { n: 32, t: 2 }
    } else {
        jacobi::JacobiSize { n: 128, t: 4 }
    };
    let p = jacobi::program();
    let prm = jacobi::params(&s);
    out.push(ResCase {
        case: Case {
            name: "jacobi",
            base: store_for(&p, &prm, |st| jacobi::init_store(st, 8)),
            program: p,
            kernel: jacobi::stepwise_kernel(16, true),
            params: prm,
            check: "A",
        },
        gated: false,
        merged_layout: false,
    });

    // Jacobi-2D with a single-column sub-tile: the 5-point window
    // spans three sliding columns, of which two are retained. The
    // merged layout keeps the whole window in one buffer.
    let (t, n, ti) = if smoke { (2, 32, 8) } else { (2, 64, 16) };
    let p = jacobi2d::program();
    let prm = jacobi2d::params(t, n);
    out.push(ResCase {
        case: Case {
            name: "jacobi2d",
            base: store_for(&p, &prm, |st| jacobi2d::init_store(st, 9)),
            program: p,
            kernel: jacobi2d::stepwise_seq_kernel(ti, 1, true),
            params: prm,
            check: "A",
        },
        gated: true,
        merged_layout: true,
    });

    // Matmul's hoisted mapping: the persistent-buffer shortcut (§4.2)
    // takes priority over residency on the hoisted operand.
    let n = if smoke { 8 } else { 16 };
    let p = matmul::program();
    let prm = vec![n];
    out.push(ResCase {
        case: Case {
            name: "matmul",
            base: store_for(&p, &prm, |st| matmul::init_store(st, 10)),
            program: p,
            kernel: matmul::blocked_kernel_hoisted(4, 4, 4, true),
            params: prm,
            check: "C",
        },
        gated: false,
        merged_layout: false,
    });

    let s = if smoke {
        conv2d::ConvSize { n: 7, k: 3 }
    } else {
        conv2d::ConvSize { n: 15, k: 3 }
    };
    let p = conv2d::program();
    let prm = conv2d::params(&s);
    out.push(ResCase {
        case: Case {
            name: "conv2d",
            base: store_for(&p, &prm, |st| conv2d::init_store(st, 11)),
            program: p,
            kernel: conv2d::blocked_seq_kernel(3, if smoke { 3 } else { 5 }, true),
            params: prm,
            check: "Out",
        },
        gated: false,
        merged_layout: false,
    });

    out
}

struct ModeResult {
    stats: ExecStats,
    store: ArrayStore,
    /// Bytes entering the compute level from global memory: staged
    /// move-ins plus direct (unstaged) reads.
    in_bytes: u64,
}

struct RunResult {
    machine: &'static str,
    double_buffer: bool,
    off: ModeResult,
    on: ModeResult,
    bit_exact: bool,
}

struct KernelResult {
    name: &'static str,
    gated: bool,
    runs: Vec<RunResult>,
}

impl RunResult {
    /// Move-in traffic ratio, off over on (>1: residency saved bytes).
    fn traffic_ratio(&self) -> f64 {
        self.off.in_bytes as f64 / self.on.in_bytes.max(1) as f64
    }
    fn label(&self) -> String {
        format!(
            "{}{}",
            self.machine,
            if self.double_buffer { "+db" } else { "" }
        )
    }
}

fn in_bytes(s: &ExecStats, word_bytes: u64) -> u64 {
    (s.moved_in + s.global_reads) * word_bytes
}

fn run_case(rc: &ResCase) -> KernelResult {
    let case = &rc.case;
    let reference = case.reference();
    let mut runs = Vec::new();
    for (label, cfg) in [
        ("gpu", MachineConfig::geforce_8800_gtx()),
        ("cell", MachineConfig::cell_like()),
    ] {
        for double_buffer in [false, true] {
            let run = |residency: bool| {
                let mut config = cfg.clone();
                config.double_buffer = double_buffer;
                config.residency = residency;
                if rc.merged_layout {
                    config.partition = false;
                }
                let mut store = case.base.clone();
                let stats = execute_blocked(&case.kernel, &case.params, &mut store, &config, false)
                    .expect("execution succeeds");
                let ib = in_bytes(&stats, config.word_bytes);
                ModeResult {
                    stats,
                    store,
                    in_bytes: ib,
                }
            };
            let off = run(false);
            let on = run(true);
            let bit_exact = case.output_matches(&off.store, &reference)
                && case.output_matches(&on.store, &reference);
            runs.push(RunResult {
                machine: label,
                double_buffer,
                off,
                on,
                bit_exact,
            });
        }
    }
    KernelResult {
        name: case.name,
        gated: rc.gated,
        runs,
    }
}

fn mode_json(m: &ModeResult) -> String {
    let s = &m.stats;
    format!(
        "{{ \"modeled_cycles\": {}, \"moved_in\": {}, \"global_reads\": {}, \
         \"in_bytes\": {}, \"dma_bytes\": {}, \"residency_groups\": {}, \
         \"retained_elems\": {}, \"delta_elems\": {}, \"interpreted_blocks\": {} }}",
        s.modeled_cycles,
        s.moved_in,
        s.global_reads,
        m.in_bytes,
        s.dma.bytes,
        s.residency_groups,
        s.retained_elems,
        s.delta_elems,
        s.interpreted_blocks,
    )
}

fn render_json(mode: &str, kernels: &[KernelResult], target: f64, pass: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n      \"traffic_gated\": {},\n",
            json_escape_free(k.name),
            k.gated
        ));
        out.push_str("      \"runs\": [\n");
        for (j, r) in k.runs.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"machine\": \"{}\", \"double_buffer\": {},\n          \"residency_off\": {},\n          \"residency_on\": {},\n          \"bit_exact\": {}, \"traffic_ratio\": {:.4} }}{}\n",
                json_escape_free(r.machine),
                r.double_buffer,
                mode_json(&r.off),
                mode_json(&r.on),
                r.bit_exact,
                r.traffic_ratio(),
                if j + 1 == k.runs.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"traffic_target\": {target:.1},\n  \"pass\": {pass}\n}}\n"
    ));
    out
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    let target = 2.0;

    println!("inter-block residency harness ({mode} mode)\n");
    let mut results = Vec::new();
    for rc in cases(smoke) {
        let r = run_case(&rc);
        for m in &r.runs {
            println!(
                "{:<9} [{:<7}] in-bytes {:>8} -> {:>8} ({:4.2}x)  retained {:>6} delta {:>6} groups {:>4}  cycles {:>9} -> {:>9}  bit-exact: {}",
                r.name,
                m.label(),
                m.off.in_bytes,
                m.on.in_bytes,
                m.traffic_ratio(),
                m.on.stats.retained_elems,
                m.on.stats.delta_elems,
                m.on.stats.residency_groups,
                m.off.stats.modeled_cycles,
                m.on.stats.modeled_cycles,
                if m.bit_exact { "yes" } else { "NO" },
            );
        }
        results.push(r);
    }

    let mut failures = Vec::new();

    for r in &results {
        for m in &r.runs {
            // Bit-exact in every mode, against the reference and
            // between the two settings.
            if !m.bit_exact {
                failures.push(format!("{}[{}]: output mismatch", r.name, m.label()));
            }
            // Modeled time must never regress with residency on.
            if m.on.stats.modeled_cycles > m.off.stats.modeled_cycles {
                failures.push(format!(
                    "{}[{}]: modeled cycles regressed ({} -> {})",
                    r.name,
                    m.label(),
                    m.off.stats.modeled_cycles,
                    m.on.stats.modeled_cycles
                ));
            }
            // The pass must leave no trace when disabled.
            if m.off.stats.residency_groups != 0
                || m.off.stats.retained_elems != 0
                || m.off.stats.delta_elems != 0
            {
                failures.push(format!(
                    "{}[{}]: residency counters nonzero with the pass off",
                    r.name,
                    m.label()
                ));
            }
            // The compiled engine must keep executing every block.
            if m.on.stats.interpreted_blocks != 0 {
                failures.push(format!(
                    "{}[{}]: {} interpreter fallbacks with residency on",
                    r.name,
                    m.label(),
                    m.on.stats.interpreted_blocks
                ));
            }
        }
        // The sliding-window kernels must clear the 2x traffic gate
        // and actually exercise retention.
        if r.gated {
            for m in &r.runs {
                if m.traffic_ratio() < target {
                    failures.push(format!(
                        "{}[{}]: move-in traffic ratio {:.2} below {target}",
                        r.name,
                        m.label(),
                        m.traffic_ratio()
                    ));
                }
                if m.on.stats.residency_groups == 0 || m.on.stats.retained_elems == 0 {
                    failures.push(format!(
                        "{}[{}]: residency counters inactive",
                        r.name,
                        m.label()
                    ));
                }
            }
        }
    }

    let json = render_json(mode, &results, target, failures.is_empty());
    conclude("BENCH_residency.json", &json, &failures);
}
