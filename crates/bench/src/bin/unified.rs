//! Unified engine harness: compiled execution × register-tile
//! hierarchy, plus the vector-width ablation.
//!
//! Before this harness existed the two tentpoles did not compose: a
//! hierarchy plan made `machine::compiled` decline the block and the
//! whole compute phase silently dropped to the per-point interpreter.
//! This binary pins the fix. It runs the five built-in kernels on the
//! GPU and Cell machine models in three modes —
//!
//! * **unified**: compiled engine *and* register-tile hierarchy on,
//! * **compiled-only**: hierarchy off,
//! * **hier-only**: compiled execution off (interpreter owns the
//!   hierarchy plan),
//!
//! — and checks, per kernel and machine:
//!
//! * outputs are bit-exact against the reference interpreter in every
//!   mode;
//! * the unified mode really ran compiled: `compiled_blocks > 0`,
//!   `interpreted_blocks == 0`, zero fallback counts — the silent
//!   drop stays fixed;
//! * unified stats equal hier-only stats counter for counter (engine
//!   attribution aside): same scratchpad traffic, same
//!   `smem_loads_saved` / `reg_bytes_moved` / `hier_groups`, same
//!   modeled cycles — so the BENCH_hier traffic numbers carry over
//!   unchanged;
//! * on matmul and ME (the kernels whose inner-process reuse the
//!   paper's recursion argument centres on), unified modeled time is
//!   no worse than the better of the two single-tentpole modes.
//!
//! A second sweep ablates [`MachineConfig::vector_width`] over
//! 1/2/4/8 in unified mode on the GPU model: modeled cycles must be
//! bit-identical at every width (batching is a pure execution
//! strategy), wall times are reported for the record. All gated
//! quantities are deterministic counters, so the gates hold on noisy
//! CI runners; wall clock is informational only.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin unified            # full
//! cargo run --release -p polymem-bench --bin unified -- --smoke # CI
//! ```
//!
//! `POLYMEM_EXEC_CHECK=1` additionally runs the reference interpreter
//! as an oracle beside every compiled block — including hierarchy
//! blocks — and panics on divergence; the CI job sets it.
//!
//! Writes `BENCH_unified.json` and exits non-zero on any failure.

use polymem_bench::harness::{best_of, conclude, json_escape_free, smoke_mode, store_for, Case};
use polymem_ir::ArrayStore;
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::{execute_blocked, ExecStats, MachineConfig};

fn cases(smoke: bool) -> Vec<Case> {
    let mut out = Vec::new();

    let size = if smoke {
        me::MeSize {
            ni: 16,
            nj: 16,
            ws: 2,
        }
    } else {
        me::MeSize {
            ni: 32,
            nj: 32,
            ws: 3,
        }
    };
    let p = me::program();
    let prm = me::params(&size);
    out.push(Case {
        name: "me",
        base: store_for(&p, &prm, |st| me::init_store(st, 7)),
        program: p,
        kernel: me::blocked_seq_kernel(4, 4, true),
        params: prm,
        check: "Sad",
    });

    let s = if smoke {
        jacobi::JacobiSize { n: 32, t: 2 }
    } else {
        jacobi::JacobiSize { n: 256, t: 4 }
    };
    let p = jacobi::program();
    let prm = jacobi::params(&s);
    out.push(Case {
        name: "jacobi",
        base: store_for(&p, &prm, |st| jacobi::init_store(st, 8)),
        program: p,
        kernel: jacobi::stepwise_kernel(16, true),
        params: prm,
        check: "A",
    });

    let (t, n) = if smoke { (2, 8) } else { (4, 32) };
    let p = jacobi2d::program();
    let prm = jacobi2d::params(t, n);
    out.push(Case {
        name: "jacobi2d",
        base: store_for(&p, &prm, |st| jacobi2d::init_store(st, 9)),
        program: p,
        kernel: jacobi2d::stepwise_seq_kernel(4, if smoke { 4 } else { 8 }, true),
        params: prm,
        check: "A",
    });

    let n = if smoke { 8 } else { 32 };
    let p = matmul::program();
    let prm = vec![n];
    out.push(Case {
        name: "matmul",
        base: store_for(&p, &prm, |st| matmul::init_store(st, 10)),
        program: p,
        kernel: matmul::blocked_kernel_hoisted(
            if smoke { 4 } else { 8 },
            if smoke { 4 } else { 8 },
            if smoke { 4 } else { 8 },
            true,
        ),
        params: prm,
        check: "C",
    });

    let s = if smoke {
        conv2d::ConvSize { n: 7, k: 3 }
    } else {
        conv2d::ConvSize { n: 23, k: 3 }
    };
    let p = conv2d::program();
    let prm = conv2d::params(&s);
    out.push(Case {
        name: "conv2d",
        base: store_for(&p, &prm, |st| conv2d::init_store(st, 11)),
        program: p,
        kernel: conv2d::blocked_seq_kernel(3, if smoke { 3 } else { 5 }, true),
        params: prm,
        check: "Out",
    });

    out
}

struct ModeResult {
    stats: ExecStats,
    store: ArrayStore,
    /// Best-of-3 compute-phase wall time, milliseconds.
    ms: f64,
}

/// Execution modes under comparison, in report order.
const MODES: [(&str, bool, bool); 3] = [
    ("unified", true, true),
    ("compiled_only", true, false),
    ("hier_only", false, true),
];

fn run_mode(case: &Case, cfg: &MachineConfig, compiled: bool, hierarchy: bool) -> ModeResult {
    let mut config = cfg.clone();
    config.compiled_exec = compiled;
    config.hierarchy = hierarchy;
    let (ns, (stats, store)) = best_of(3, || {
        let mut store = case.base.clone();
        let stats = execute_blocked(&case.kernel, &case.params, &mut store, &config, false)
            .expect("execution succeeds");
        (stats.compute_ns as f64, (stats, store))
    });
    ModeResult {
        stats,
        store,
        ms: ns / 1e6,
    }
}

struct MachineResult {
    machine: &'static str,
    /// One result per [`MODES`] entry.
    modes: Vec<ModeResult>,
    bit_exact: bool,
}

struct KernelResult {
    name: &'static str,
    machines: Vec<MachineResult>,
}

fn smem_traffic(s: &ExecStats) -> u64 {
    s.smem_reads + s.smem_writes
}

fn run_case(case: &Case) -> KernelResult {
    let reference = case.reference();
    let mut machines = Vec::new();
    for (label, cfg) in [
        ("gpu", MachineConfig::geforce_8800_gtx()),
        ("cell", MachineConfig::cell_like()),
    ] {
        let modes: Vec<ModeResult> = MODES
            .iter()
            .map(|&(_, c, h)| run_mode(case, &cfg, c, h))
            .collect();
        let bit_exact = modes
            .iter()
            .all(|m| case.output_matches(&m.store, &reference));
        machines.push(MachineResult {
            machine: label,
            modes,
            bit_exact,
        });
    }
    KernelResult {
        name: case.name,
        machines,
    }
}

/// The vector-width ablation: unified mode on the GPU model at each
/// width, stats + wall time.
struct Ablation {
    name: &'static str,
    /// `(width, modeled_cycles, ms)` per ablated width.
    points: Vec<(u64, u64, f64)>,
}

fn run_ablation(case: &Case) -> Ablation {
    let mut points = Vec::new();
    for w in [1u64, 2, 4, 8] {
        let mut cfg = MachineConfig::geforce_8800_gtx();
        cfg.vector_width = w;
        let m = run_mode(case, &cfg, true, true);
        points.push((w, m.stats.modeled_cycles, m.ms));
    }
    Ablation {
        name: case.name,
        points,
    }
}

fn mode_json(m: &ModeResult) -> String {
    let s = &m.stats;
    format!(
        "{{ \"modeled_cycles\": {}, \"compute_ms\": {:.3}, \"smem_traffic\": {}, \
         \"smem_loads_saved\": {}, \"reg_bytes_moved\": {}, \"hier_groups\": {}, \
         \"compiled_blocks\": {}, \"interpreted_blocks\": {} }}",
        s.modeled_cycles,
        m.ms,
        smem_traffic(s),
        s.smem_loads_saved,
        s.reg_bytes_moved,
        s.hier_groups,
        s.compiled_blocks,
        s.interpreted_blocks,
    )
}

fn render_json(mode: &str, kernels: &[KernelResult], ablations: &[Ablation], pass: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n      \"runs\": [\n",
            json_escape_free(k.name)
        ));
        for (j, m) in k.machines.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"machine\": \"{}\", \"bit_exact\": {},\n",
                json_escape_free(m.machine),
                m.bit_exact
            ));
            for (mi, (label, _, _)) in MODES.iter().enumerate() {
                out.push_str(&format!(
                    "          \"{}\": {}{}\n",
                    json_escape_free(label),
                    mode_json(&m.modes[mi]),
                    if mi + 1 == MODES.len() { " }" } else { "," }
                ));
            }
            out.push_str(if j + 1 == k.machines.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"vector_width_ablation\": [\n");
    for (i, a) in ablations.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"points\": [",
            json_escape_free(a.name)
        ));
        for (j, (w, cyc, ms)) in a.points.iter().enumerate() {
            out.push_str(&format!(
                "{{ \"width\": {w}, \"modeled_cycles\": {cyc}, \"compute_ms\": {ms:.3} }}{}",
                if j + 1 == a.points.len() { "" } else { ", " }
            ));
        }
        out.push_str(&format!(
            "] }}{}\n",
            if i + 1 == ablations.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"pass\": {pass}\n}}\n"));
    out
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    let check = std::env::var("POLYMEM_EXEC_CHECK").is_ok_and(|v| v == "1");

    println!(
        "unified engine harness ({mode} mode{})\n",
        if check { ", oracle cross-check on" } else { "" }
    );
    let all_cases = cases(smoke);
    let mut results = Vec::new();
    for case in &all_cases {
        let r = run_case(case);
        for m in &r.machines {
            let [u, c, h] = &m.modes[..] else {
                unreachable!("three modes")
            };
            println!(
                "{:<9} [{:<4}] modeled {:>10} (compiled-only {:>10}, hier-only {:>10})  \
                 blocks {:>4}c/{}i  smem {:>8}  bit-exact: {}",
                r.name,
                m.machine,
                u.stats.modeled_cycles,
                c.stats.modeled_cycles,
                h.stats.modeled_cycles,
                u.stats.compiled_blocks,
                u.stats.interpreted_blocks,
                smem_traffic(&u.stats),
                if m.bit_exact { "yes" } else { "NO" },
            );
        }
        results.push(r);
    }

    println!();
    let mut ablations = Vec::new();
    for case in &all_cases {
        let a = run_ablation(case);
        let pts: Vec<String> = a
            .points
            .iter()
            .map(|(w, _, ms)| format!("w{w} {ms:7.3} ms"))
            .collect();
        println!("{:<9} [gpu ] ablation: {}", a.name, pts.join("  "));
        ablations.push(a);
    }

    let mut failures = Vec::new();

    for r in &results {
        for m in &r.machines {
            let [u, _, h] = &m.modes[..] else {
                unreachable!("three modes")
            };
            // Every mode bit-exact against the reference.
            if !m.bit_exact {
                failures.push(format!("{}[{}]: output mismatch", r.name, m.machine));
            }
            // The unified mode really composed the tentpoles: the
            // compiled engine owned every compute phase even with the
            // register level active.
            if u.stats.compiled_blocks == 0 || u.stats.interpreted_blocks != 0 {
                failures.push(format!(
                    "{}[{}]: unified mode fell back ({} compiled / {} interpreted blocks)",
                    r.name, m.machine, u.stats.compiled_blocks, u.stats.interpreted_blocks
                ));
            }
            if u.stats.fallback.total() != 0 {
                failures.push(format!(
                    "{}[{}]: unified mode recorded {} interpreter fallbacks",
                    r.name,
                    m.machine,
                    u.stats.fallback.total()
                ));
            }
            // Counter-for-counter parity with the interpreter on the
            // same plan: the scratchpad-traffic numbers BENCH_hier
            // gates carry over unchanged.
            if u.stats != h.stats {
                failures.push(format!(
                    "{}[{}]: unified stats diverge from hier-only",
                    r.name, m.machine
                ));
            }
        }
    }

    // The composition gate: where the register level helps (matmul,
    // ME), running it *through the compiled engine* must model no
    // worse than the better single-tentpole mode.
    for name in ["matmul", "me"] {
        let r = results.iter().find(|r| r.name == name).expect("case");
        for m in &r.machines {
            let [u, c, h] = &m.modes[..] else {
                unreachable!("three modes")
            };
            let best_single = c.stats.modeled_cycles.min(h.stats.modeled_cycles);
            if u.stats.modeled_cycles > best_single {
                failures.push(format!(
                    "{name}[{}]: unified modeled {} exceeds best single-tentpole {}",
                    m.machine, u.stats.modeled_cycles, best_single
                ));
            }
        }
    }

    // Batching is a pure execution strategy: modeled cycles must be
    // bit-identical at every vector width.
    for a in &ablations {
        let c0 = a.points[0].1;
        if a.points.iter().any(|&(_, c, _)| c != c0) {
            failures.push(format!(
                "{}: modeled cycles vary across vector widths",
                a.name
            ));
        }
    }

    let json = render_json(mode, &results, &ablations, failures.is_empty());
    conclude("BENCH_unified.json", &json, &failures);
}
