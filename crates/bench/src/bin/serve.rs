//! Multi-tenant load generator for the `polymem serve` compile
//! service.
//!
//! Starts the daemon in-process on a loopback port with a fresh
//! artifact store, then drives it the way a fleet of clients would:
//!
//! * **cold phase** — one sequential pass over the five built-in
//!   kernels × {GPU, Cell}: each launch is first `analyze`d against
//!   the empty store (a fresh compile: the full §3 pipeline, timed
//!   end-to-end through the protocol), then `run`; the run's checksum
//!   must be bit-exact against a direct `execute_blocked` in this
//!   process (the same comparison `polymem run` makes);
//! * **warm phase** — N concurrent clients × kernels × machines ×
//!   M iterations of `analyze` + `run` against the shared warm cache:
//!   plans must come back `"seeded"`, and the best warm compile
//!   latency must cut the cold compiler-inclusive latency by ≥ 5× on
//!   ME and Jacobi-2D (reported always, gated outside `--smoke`);
//!   sustained throughput is measured over the whole phase;
//! * **restart phase** — a protocol `shutdown`, then a brand-new
//!   daemon on the same store directory: the first request must hit
//!   the on-disk artifact (`plan_source: "artifact"`) with zero
//!   analysis nanoseconds — the §3 passes never ran.
//!
//! Writes `BENCH_serve.json` and exits non-zero on any failure.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin serve            # full
//! cargo run --release -p polymem-bench --bin serve -- --smoke # CI
//! ```

use polymem_bench::harness::{conclude, json_escape_free, smoke_mode};
use polymem_ir::ArrayStore;
use polymem_machine::execute_blocked;
use polymem_serve::workload;
use polymem_serve::{Json, ServeConfig, Server, KERNELS};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

const MACHINES: [&str; 2] = ["gpu", "cell"];

/// One line-delimited JSON connection to the daemon.
struct Client {
    reader: BufReader<TcpStream>,
    out: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            out: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        self.out.write_all(line.as_bytes()).expect("send");
        self.out.write_all(b"\n").expect("send");
        self.out.flush().expect("flush");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("receive");
        Json::parse(resp.trim()).expect("daemon speaks JSON")
    }
}

fn req_line(cmd: &str, kernel: &str, machine: &str, size: i64) -> String {
    format!(r#"{{"cmd":"{cmd}","kernel":"{kernel}","machine":"{machine}","size":{size}}}"#)
}

fn field_str(v: &Json, k: &str) -> String {
    v.get(k).and_then(Json::as_str).unwrap_or("").to_string()
}

fn field_i64(v: &Json, k: &str) -> i64 {
    v.get(k).and_then(Json::as_i64).unwrap_or(-1)
}

fn is_ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

/// The checksum a direct (daemon-free) run of this launch produces —
/// the bit-exactness oracle. Mirrors the daemon's request defaults:
/// hierarchy and residency on, no double buffering.
fn direct_checksum(kernel: &str, machine: &str, size: i64) -> u64 {
    let w = workload::resolve(kernel, size, false).expect("built-in kernel");
    let mut cfg = match machine {
        "gpu" => polymem_machine::MachineConfig::geforce_8800_gtx(),
        "cell" => polymem_machine::MachineConfig::cell_like(),
        _ => unreachable!(),
    };
    cfg.hierarchy = true;
    cfg.residency = true;
    let mut st = ArrayStore::for_program(&w.program, &w.params).expect("store");
    workload::init(kernel, &mut st);
    execute_blocked(&w.kernel, &w.params, &mut st, &cfg, true).expect("direct run");
    workload::checksum(st.data(w.check).expect("output array"))
}

/// Per-(kernel, machine) aggregate across the phases.
#[derive(Default, Clone)]
struct CaseResult {
    /// Fresh-compile `analyze` latency against the empty store
    /// (compiler-inclusive cold latency).
    analyze_cold_ns: i64,
    /// Best warm `analyze` latency (cache hit).
    analyze_warm_ns: i64,
    /// First `run` latency (plan already warm from the cold analyze).
    run_first_ns: i64,
    /// Best warm `run` latency.
    run_warm_ns: i64,
    warm_samples: usize,
    source_cold: String,
    source_warm: String,
    checksum: String,
    bit_exact: bool,
}

/// What `plan_source` a request for this kernel must report once the
/// plan is warm — jacobi's canonical mapping is scratchpad-off, so it
/// never has a plan at all.
fn want_source(kernel: &str) -> &'static str {
    if kernel == "jacobi" {
        "none"
    } else {
        "seeded"
    }
}

fn main() {
    let smoke = smoke_mode();
    let size: i64 = if smoke { 8 } else { 16 };
    let clients = if smoke { 2 } else { 4 };
    let iters = if smoke { 2 } else { 4 };

    let store_dir =
        std::env::temp_dir().join(format!("polymem_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("store dir");
    let dir_string = store_dir.to_string_lossy().into_owned();

    let cfg = || ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: clients + 1,
        artifact_dir: Some(dir_string.clone()),
        lru_capacity: 64,
        launch_slots: 2,
    };

    let mut failures: Vec<String> = Vec::new();
    let mut results: HashMap<(String, String), CaseResult> = HashMap::new();

    // ---- cold phase -----------------------------------------------------
    let server = Server::start(cfg()).expect("daemon starts");
    let addr = server.addr();
    println!("daemon on {addr}, store {dir_string}");
    println!("\ncold pass (fresh store; analyze = compiler-inclusive):");
    {
        let mut c = Client::connect(addr);
        for kernel in KERNELS {
            for machine in MACHINES {
                // Fresh compile through the protocol.
                let an = c.request(&req_line("analyze", kernel, machine, size));
                if !is_ok(&an) {
                    failures.push(format!(
                        "cold analyze {kernel}[{machine}]: {}",
                        field_str(&an, "error")
                    ));
                    continue;
                }
                let an_source = field_str(&an, "plan_source");
                let an_ns = field_i64(&an, "elapsed_ns");
                let want = if kernel == "jacobi" { "none" } else { "fresh" };
                if an_source != want {
                    failures.push(format!(
                        "cold analyze {kernel}[{machine}]: plan_source {an_source}, want {want}"
                    ));
                }
                // Execute; the analyze above warmed the shared cache,
                // so the launch must seed from it.
                let rn = c.request(&req_line("run", kernel, machine, size));
                if !is_ok(&rn) {
                    failures.push(format!(
                        "cold run {kernel}[{machine}]: {}",
                        field_str(&rn, "error")
                    ));
                    continue;
                }
                let rn_source = field_str(&rn, "plan_source");
                if rn_source != want_source(kernel) {
                    failures.push(format!(
                        "first run {kernel}[{machine}]: plan_source {rn_source}, want {}",
                        want_source(kernel)
                    ));
                }
                let checksum = field_str(&rn, "checksum");
                let direct = format!("{:016x}", direct_checksum(kernel, machine, size));
                let exact = checksum == direct;
                if !exact {
                    failures.push(format!(
                        "{kernel}[{machine}]: daemon checksum {checksum} != direct {direct}"
                    ));
                }
                println!(
                    "  {kernel:>8}[{machine:>4}]  compile {:9.3} ms ({an_source:>5})  run {:9.3} ms  bit-exact {}",
                    an_ns as f64 / 1e6,
                    field_i64(&rn, "elapsed_ns") as f64 / 1e6,
                    if exact { "yes" } else { "NO" }
                );
                results.insert(
                    (kernel.to_string(), machine.to_string()),
                    CaseResult {
                        analyze_cold_ns: an_ns,
                        run_first_ns: field_i64(&rn, "elapsed_ns"),
                        source_cold: an_source,
                        checksum,
                        bit_exact: exact,
                        ..CaseResult::default()
                    },
                );
            }
        }
    }

    // ---- warm phase: N concurrent tenants -------------------------------
    println!("\nwarm pass ({clients} clients x {iters} iterations, analyze + run):");
    let t0 = Instant::now();
    type Sample = (String, String, &'static str, i64, String, u64);
    let mut samples: Vec<Sample> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut c = Client::connect(addr);
                    let mut out: Vec<Sample> = Vec::new();
                    for _ in 0..iters {
                        for kernel in KERNELS {
                            for machine in MACHINES {
                                for cmd in ["analyze", "run"] {
                                    let resp = c.request(&req_line(cmd, kernel, machine, size));
                                    let cs = u64::from_str_radix(&field_str(&resp, "checksum"), 16)
                                        .unwrap_or(0);
                                    out.push((
                                        kernel.to_string(),
                                        machine.to_string(),
                                        cmd,
                                        if is_ok(&resp) {
                                            field_i64(&resp, "elapsed_ns")
                                        } else {
                                            -1
                                        },
                                        field_str(&resp, "plan_source"),
                                        cs,
                                    ));
                                }
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            samples.extend(h.join().expect("client thread"));
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let total_requests = samples.len();
    let throughput = total_requests as f64 / wall.max(1e-9);

    for (kernel, machine, cmd, elapsed, source, cs) in &samples {
        let Some(r) = results.get_mut(&(kernel.clone(), machine.clone())) else {
            continue;
        };
        if *elapsed < 0 {
            failures.push(format!("warm {cmd} {kernel}[{machine}]: request failed"));
            continue;
        }
        if source != want_source(kernel) {
            failures.push(format!(
                "warm {cmd} {kernel}[{machine}]: plan_source {source}, want {}",
                want_source(kernel)
            ));
        }
        match *cmd {
            "analyze" => {
                if r.analyze_warm_ns == 0 || *elapsed < r.analyze_warm_ns {
                    r.analyze_warm_ns = *elapsed;
                }
            }
            _ => {
                if format!("{cs:016x}") != r.checksum {
                    failures.push(format!(
                        "warm run {kernel}[{machine}]: checksum drifted across requests"
                    ));
                }
                if r.run_warm_ns == 0 || *elapsed < r.run_warm_ns {
                    r.run_warm_ns = *elapsed;
                }
            }
        }
        r.warm_samples += 1;
        r.source_warm = source.clone();
    }
    println!("  {total_requests} requests in {wall:.2} s -> {throughput:.0} req/s");

    // Warm-hit ratio from the daemon's own counters.
    let (hits, misses) = {
        let mut c = Client::connect(addr);
        let resp = c.request(r#"{"cmd":"stats"}"#);
        (field_i64(&resp, "lru_hits"), field_i64(&resp, "lru_misses"))
    };
    let warm_hit_ratio = hits as f64 / ((hits + misses).max(1)) as f64;
    println!("  lru hits/misses {hits}/{misses} (hit ratio {warm_hit_ratio:.2})");
    if hits <= 0 {
        failures.push("warm phase produced no LRU hits".into());
    }

    // Latency gate: a warm hit must cut the compiler-inclusive
    // latency >= 5x on the paper's two headline kernels (GPU model).
    let target = 5.0;
    println!("\nwarm vs cold compile latency (best warm sample):");
    let mut speedups: Vec<(String, String, f64)> = Vec::new();
    for kernel in KERNELS {
        if kernel == "jacobi" {
            continue; // no plan, nothing to cache
        }
        for machine in MACHINES {
            let r = &results[&(kernel.to_string(), machine.to_string())];
            if r.warm_samples == 0 || r.analyze_cold_ns <= 0 {
                continue;
            }
            let s = r.analyze_cold_ns as f64 / (r.analyze_warm_ns.max(1)) as f64;
            speedups.push((kernel.to_string(), machine.to_string(), s));
            println!(
                "  {kernel:>8}[{machine:>4}]  cold {:9.3} ms  warm {:9.3} ms  {s:7.1}x",
                r.analyze_cold_ns as f64 / 1e6,
                r.analyze_warm_ns as f64 / 1e6
            );
            let gated = machine == "gpu" && (kernel == "me" || kernel == "jacobi2d");
            if gated && s < target && !smoke {
                failures.push(format!(
                    "{kernel}[{machine}]: warm compile speedup {s:.2}x < {target}x"
                ));
            }
        }
    }

    // ---- restart phase ---------------------------------------------------
    println!("\nrestart (cold daemon, warm store):");
    {
        let mut c = Client::connect(addr);
        let resp = c.request(r#"{"cmd":"shutdown"}"#);
        assert!(is_ok(&resp), "shutdown acknowledged");
    }
    server.join();
    let server2 = Server::start(cfg()).expect("daemon restarts");
    let mut restart_source = String::new();
    let mut restart_analysis_ns: i64 = -1;
    {
        let mut c = Client::connect(server2.addr());
        for kernel in ["me", "jacobi2d"] {
            let resp = c.request(&req_line("run", kernel, "gpu", size));
            let source = field_str(&resp, "plan_source");
            let analysis = field_i64(&resp, "analysis_ns");
            let checksum = field_str(&resp, "checksum");
            println!("  {kernel:>8}[ gpu]  source {source:>8}  analysis {analysis} ns");
            if source != "artifact" {
                failures.push(format!(
                    "restart {kernel}: plan_source {source}, want artifact"
                ));
            }
            if analysis != 0 {
                failures.push(format!(
                    "restart {kernel}: analysis_ns {analysis}, want 0 (S3 passes must not run)"
                ));
            }
            if checksum != results[&(kernel.to_string(), "gpu".to_string())].checksum {
                failures.push(format!("restart {kernel}: checksum drifted"));
            }
            if kernel == "me" {
                restart_source = source;
                restart_analysis_ns = analysis;
            }
        }
    }
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);

    // ---- report -----------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"clients\": {clients},\n  \"iterations\": {iters},\n  \"size\": {size},\n"
    ));
    json.push_str("  \"cases\": [\n");
    let mut first = true;
    for kernel in KERNELS {
        for machine in MACHINES {
            let r = &results[&(kernel.to_string(), machine.to_string())];
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let speedup = speedups
                .iter()
                .find(|(k, m, _)| k == kernel && m == machine)
                .map(|(_, _, s)| *s)
                .unwrap_or(0.0);
            json.push_str(&format!(
                "    {{ \"kernel\": \"{}\", \"machine\": \"{}\", \"analyze_cold_ns\": {}, \"analyze_warm_ns\": {}, \"run_first_ns\": {}, \"run_warm_ns\": {}, \"warm_samples\": {}, \"compile_speedup\": {:.2}, \"plan_source_cold\": \"{}\", \"plan_source_warm\": \"{}\", \"bit_exact\": {} }}",
                json_escape_free(kernel),
                json_escape_free(machine),
                r.analyze_cold_ns,
                r.analyze_warm_ns,
                r.run_first_ns,
                r.run_warm_ns,
                r.warm_samples,
                speedup,
                json_escape_free(&r.source_cold),
                json_escape_free(&r.source_warm),
                r.bit_exact
            ));
        }
    }
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"throughput_rps\": {throughput:.1},\n  \"warm_hit_ratio\": {warm_hit_ratio:.4},\n"
    ));
    json.push_str(&format!(
        "  \"restart\": {{ \"plan_source\": \"{}\", \"analysis_ns\": {} }},\n",
        json_escape_free(&restart_source),
        restart_analysis_ns
    ));
    json.push_str(&format!(
        "  \"speedup_target\": {target},\n  \"pass\": {}\n}}\n",
        failures.is_empty()
    ));

    conclude("BENCH_serve.json", &json, &failures);
}
