//! Extension experiments beyond the paper's evaluation:
//!
//! 1. **conv2d** — a windowed kernel the paper's intro motivates but
//!    does not measure: staged vs DRAM-only across kernel widths.
//! 2. **Cell-like machine** — the paper's framework targets the Cell's
//!    mandatory local store too (§3); compare the same staged matmul
//!    on the GPU-like and Cell-like presets.
//! 3. **Timelines** — phase breakdowns (movement / compute /
//!    scratchpad / barrier) for the paper's two kernels at their
//!    chosen configurations, showing which resource binds where.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin extensions
//! ```

use polymem_kernels::{conv2d, jacobi, me};
use polymem_machine::{MachineConfig, Timeline};

fn main() {
    conv2d_sweep();
    cell_comparison();
    timelines();
}

fn conv2d_sweep() {
    let gpu = MachineConfig::geforce_8800_gtx();
    println!("== Extension 1: conv2d staged vs DRAM-only (N = 4096) ==");
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "kernel", "DRAM-only", "staged", "gain"
    );
    for k in [3i64, 5, 7, 9] {
        let s = conv2d::ConvSize { n: 4096, k };
        let dram = conv2d::profile(&s, (32, 32), 64, 256, false, &gpu)
            .estimate(&gpu)
            .expect("fits")
            .total_ms;
        let smem = conv2d::profile(&s, (32, 32), 64, 256, true, &gpu)
            .estimate(&gpu)
            .expect("fits")
            .total_ms;
        println!(
            "{:>5}x{:<2} {:>13.1} ms {:>13.1} ms {:>7.1}x",
            k,
            k,
            dram,
            smem,
            dram / smem
        );
    }
    println!("   (the window-overlap reuse the framework captures grows with k^2)\n");
}

fn cell_comparison() {
    use polymem_ir::ArrayStore;
    use polymem_kernels::matmul;
    use polymem_machine::execute_blocked;
    println!("== Extension 2: same staged kernel on GPU-like vs Cell-like ==");
    let p = matmul::program();
    let n = 16i64;
    for (label, cfg) in [
        ("GeForce 8800 GTX ", MachineConfig::geforce_8800_gtx()),
        ("Cell-like machine", MachineConfig::cell_like()),
    ] {
        let mut st = ArrayStore::for_program(&p, &[n]).expect("store");
        matmul::init_store(&mut st, 1);
        let stats = execute_blocked(
            &matmul::blocked_kernel(4, 4, 8, true),
            &[n],
            &mut st,
            &cfg,
            true,
        )
        .expect("run");
        println!(
            "  {label}: {} blocks, moved in/out {}/{}, peak {} words ({} B limit)",
            stats.blocks, stats.moved_in, stats.moved_out, stats.max_smem_words, cfg.smem_bytes
        );
    }
    println!("   (Cell semantics force every compute access through the local store)\n");
}

fn timelines() {
    let gpu = MachineConfig::geforce_8800_gtx();
    println!("== Extension 3: phase timelines at the paper's configurations ==");

    let s = me::MeSize::square(16 << 20, 16);
    let p = me::profile(&s, (32, 16), 32, 256, true, &gpu);
    let tl = Timeline::from_profile(&p, &gpu).expect("fits");
    println!("ME, 16M positions, tiles (32,16,16,16):");
    print!("{}", tl.render(64));

    let s = jacobi::JacobiSize {
        n: 512 * 1024,
        t: 4096,
    };
    let p = jacobi::profile_tiled(&s, 32, 256, 128, 64, true, &gpu);
    let tl = Timeline::from_profile(&p, &gpu).expect("fits");
    println!("Jacobi, N = 512k, tiles (32, 256):");
    print!("{}", tl.render(64));

    let s = jacobi::JacobiSize {
        n: 32 * 1024,
        t: 4096,
    };
    let p = jacobi::profile_resident(&s, 32, 256, 64, &gpu);
    let tl = Timeline::from_profile(&p, &gpu).expect("fits");
    println!("Jacobi resident (N = 32k) at 256 blocks (Fig. 7 right edge — barrier share grows):");
    print!("{}", tl.render(64));
}
