//! Extension experiments beyond the paper's evaluation, on the shared
//! `BENCH_*.json` harness:
//!
//! 1. **conv2d** — a windowed kernel the paper's intro motivates but
//!    does not measure: staged vs DRAM-only across kernel widths,
//!    rendered as a figure table. Gated: staging must win at every
//!    width and the gain must grow with the window (the reuse the
//!    framework captures is O(k²)).
//! 2. **Cell-like machine** — the paper's framework targets the Cell's
//!    mandatory local store too (§3); the same staged matmul runs on
//!    the GPU-like and Cell-like presets through a harness [`Case`],
//!    gated on bit-exactness and the scratchpad capacity limit.
//! 3. **Timelines** — phase breakdowns (movement / compute /
//!    scratchpad / barrier) for the paper's two kernels at their
//!    chosen configurations, gated on each timeline being non-empty
//!    with phases summing to its total.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin extensions            # full
//! cargo run --release -p polymem-bench --bin extensions -- --smoke # CI
//! ```
//!
//! Writes `BENCH_extensions.json`; exits non-zero on any gate failure.
//! All gated quantities come from the deterministic cost model or
//! deterministic counters, so the gates hold in smoke mode too.

use polymem_bench::harness::{best_of, conclude, json_escape_free, smoke_mode, store_for, Case};
use polymem_bench::{Figure, Series};
use polymem_kernels::{conv2d, jacobi, matmul, me};
use polymem_machine::{execute_blocked, MachineConfig, Timeline};

struct SweepRow {
    k: i64,
    dram_ms: f64,
    staged_ms: f64,
}

impl SweepRow {
    fn gain(&self) -> f64 {
        self.dram_ms / self.staged_ms
    }
}

/// Extension 1: staged vs DRAM-only conv2d across window widths, via
/// the figure machinery the `fig*` binaries share.
fn conv2d_sweep(n: i64) -> (Figure, Vec<SweepRow>) {
    let gpu = MachineConfig::geforce_8800_gtx();
    let mut dram = Series {
        label: "DRAM-only".into(),
        points: vec![],
    };
    let mut staged = Series {
        label: "staged".into(),
        points: vec![],
    };
    let mut rows = Vec::new();
    for k in [3i64, 5, 7, 9] {
        let s = conv2d::ConvSize { n, k };
        let d = conv2d::profile(&s, (32, 32), 64, 256, false, &gpu)
            .estimate(&gpu)
            .expect("fits")
            .total_ms;
        let m = conv2d::profile(&s, (32, 32), 64, 256, true, &gpu)
            .estimate(&gpu)
            .expect("fits")
            .total_ms;
        dram.points.push((k as f64, d));
        staged.points.push((k as f64, m));
        rows.push(SweepRow {
            k,
            dram_ms: d,
            staged_ms: m,
        });
    }
    let fig = Figure {
        id: "Extension 1".into(),
        title: format!("conv2d staged vs DRAM-only (N = {n})"),
        x_label: "Window".into(),
        series: vec![dram, staged],
    };
    (fig, rows)
}

struct CellRow {
    machine: &'static str,
    blocks: u64,
    moved_in: u64,
    moved_out: u64,
    peak_words: u64,
    word_bytes: u64,
    smem_bytes: u64,
    bit_exact: bool,
}

/// Extension 2: the same staged matmul on both machine presets.
fn cell_comparison(n: i64) -> Vec<CellRow> {
    let p = matmul::program();
    let case = Case {
        name: "matmul",
        base: store_for(&p, &[n], |st| matmul::init_store(st, 1)),
        program: p,
        kernel: matmul::blocked_kernel(4, 4, 8, true),
        params: vec![n],
        check: "C",
    };
    let reference = case.reference();
    let mut rows = Vec::new();
    for (machine, cfg) in [
        ("gpu", MachineConfig::geforce_8800_gtx()),
        ("cell", MachineConfig::cell_like()),
    ] {
        let (_, (stats, store)) = best_of(3, || {
            let mut store = case.base.clone();
            let stats = execute_blocked(&case.kernel, &case.params, &mut store, &cfg, true)
                .expect("execution succeeds");
            (stats.compute_ns as f64, (stats, store))
        });
        rows.push(CellRow {
            machine,
            blocks: stats.blocks,
            moved_in: stats.moved_in,
            moved_out: stats.moved_out,
            peak_words: stats.max_smem_words,
            word_bytes: cfg.word_bytes,
            smem_bytes: cfg.smem_bytes,
            bit_exact: case.output_matches(&store, &reference),
        });
    }
    rows
}

struct TimelineRow {
    name: &'static str,
    timeline: Timeline,
}

/// Extension 3: phase timelines at the paper's configurations.
fn timelines(smoke: bool) -> Vec<TimelineRow> {
    let gpu = MachineConfig::geforce_8800_gtx();
    let mut out = Vec::new();

    let s = me::MeSize::square(if smoke { 1 << 20 } else { 16 << 20 }, 16);
    let p = me::profile(&s, (32, 16), 32, 256, true, &gpu);
    out.push(TimelineRow {
        name: "me",
        timeline: Timeline::from_profile(&p, &gpu).expect("fits"),
    });

    let s = jacobi::JacobiSize {
        n: if smoke { 64 * 1024 } else { 512 * 1024 },
        t: 4096,
    };
    let p = jacobi::profile_tiled(&s, 32, 256, 128, 64, true, &gpu);
    out.push(TimelineRow {
        name: "jacobi",
        timeline: Timeline::from_profile(&p, &gpu).expect("fits"),
    });

    let s = jacobi::JacobiSize {
        n: 32 * 1024,
        t: 4096,
    };
    let p = jacobi::profile_resident(&s, 32, 256, 64, &gpu);
    out.push(TimelineRow {
        name: "jacobi_resident",
        timeline: Timeline::from_profile(&p, &gpu).expect("fits"),
    });
    out
}

fn render_json(
    mode: &str,
    sweep: &[SweepRow],
    cells: &[CellRow],
    tls: &[TimelineRow],
    pass: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str("  \"conv2d_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"k\": {}, \"dram_ms\": {:.3}, \"staged_ms\": {:.3}, \"gain\": {:.3} }}{}\n",
            r.k,
            r.dram_ms,
            r.staged_ms,
            r.gain(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"cell_comparison\": [\n");
    for (i, r) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"machine\": \"{}\", \"blocks\": {}, \"moved_in\": {}, \"moved_out\": {}, \
             \"peak_words\": {}, \"smem_bytes\": {}, \"bit_exact\": {} }}{}\n",
            json_escape_free(r.machine),
            r.blocks,
            r.moved_in,
            r.moved_out,
            r.peak_words,
            r.smem_bytes,
            r.bit_exact,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"timelines\": [\n");
    for (i, r) in tls.iter().enumerate() {
        let phases = r
            .timeline
            .segments
            .iter()
            .map(|s| {
                format!(
                    "{{ \"phase\": \"{}\", \"ms\": {:.4} }}",
                    s.phase.label(),
                    s.ms
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"total_ms\": {:.4}, \"segments\": [{}] }}{}\n",
            json_escape_free(r.name),
            r.timeline.total_ms,
            phases,
            if i + 1 == tls.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!("  ],\n  \"pass\": {pass}\n}}\n"));
    out
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    println!("extension experiments ({mode} mode)\n");

    let (fig, sweep) = conv2d_sweep(if smoke { 512 } else { 4096 });
    println!("{}", fig.to_table());
    println!("   (the window-overlap reuse the framework captures grows with k^2)\n");

    let cells = cell_comparison(if smoke { 8 } else { 16 });
    println!("== Extension 2: same staged kernel on GPU-like vs Cell-like ==");
    for r in &cells {
        println!(
            "  [{:<4}] {} blocks, moved in/out {}/{}, peak {} words ({} B limit), bit-exact: {}",
            r.machine,
            r.blocks,
            r.moved_in,
            r.moved_out,
            r.peak_words,
            r.smem_bytes,
            if r.bit_exact { "yes" } else { "NO" },
        );
    }

    let tls = timelines(smoke);
    println!("\n== Extension 3: phase timelines at the paper's configurations ==");
    for r in &tls {
        println!("{} ({:.2} ms):", r.name, r.timeline.total_ms);
        print!("{}", r.timeline.render(64));
    }

    let mut failures = Vec::new();
    for r in &sweep {
        if r.staged_ms >= r.dram_ms {
            failures.push(format!("conv2d k={}: staging did not win", r.k));
        }
    }
    for w in sweep.windows(2) {
        if w[1].gain() <= w[0].gain() {
            failures.push(format!(
                "conv2d: gain did not grow from k={} ({:.2}x) to k={} ({:.2}x)",
                w[0].k,
                w[0].gain(),
                w[1].k,
                w[1].gain()
            ));
        }
    }
    for r in &cells {
        if !r.bit_exact {
            failures.push(format!("matmul[{}]: output mismatch", r.machine));
        }
        if r.peak_words * r.word_bytes > r.smem_bytes {
            failures.push(format!(
                "matmul[{}]: peak {} words exceeds the {} B local store",
                r.machine, r.peak_words, r.smem_bytes
            ));
        }
    }
    for r in &tls {
        let sum: f64 = r.timeline.segments.iter().map(|s| s.ms).sum();
        if r.timeline.segments.is_empty() || (sum - r.timeline.total_ms).abs() > 1e-6 {
            failures.push(format!(
                "timeline {}: segments sum {:.4} != total {:.4}",
                r.name, sum, r.timeline.total_ms
            ));
        }
    }

    let json = render_json(mode, &sweep, &cells, &tls, failures.is_empty());
    conclude("BENCH_extensions.json", &json, &failures);
}
