//! Machine-backend acceptance harness.
//!
//! Runs every built-in kernel's canonical (preset) mapping on the four
//! mapping-relevant machine descriptions (`gpu`, `cell`, `pim`,
//! `spatial`) and gates the claims the machine-description subsystem
//! ships with:
//!
//! * **bit-exact everywhere** — the same unchanged kernel produces the
//!   reference interpreter's exact output on all 4 machines × 5
//!   kernels (`POLYMEM_EXEC_CHECK=1` additionally cross-checks every
//!   block in-flight);
//! * **decisions diverge** — the §3 pipeline answers differently per
//!   machine: PIM (in-place compute) stages strictly fewer bytes than
//!   the GPU on at least two kernels (in fact zero everywhere), cell
//!   (mandatory local store) stages at least as much as the GPU on
//!   every kernel it stages;
//! * **the tuner diverges too** — the autotuned winner on the spatial
//!   machine (placement-priced NoC, 2 KB operand memories) differs
//!   from the GPU's winner on at least two kernels.
//!
//! Per-machine mapping decisions (staged bytes, scratchpad footprint,
//! modeled cycles, tune winner) are recorded in `BENCH_machines.json`.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin machines            # full
//! cargo run --release -p polymem-bench --bin machines -- --smoke # CI
//! ```

use polymem_bench::harness::{conclude, json_escape_free, smoke_mode};
use polymem_ir::{exec_program, ArrayStore};
use polymem_kernels::tunespace;
use polymem_machine::{desc, execute_blocked, tune, MachineConfig, TuneOptions};

const KERNELS: [&str; 5] = ["matmul", "me", "jacobi", "jacobi2d", "conv2d"];
const MACHINES: [&str; 4] = ["gpu", "cell", "pim", "spatial"];

/// One kernel × machine execution of the canonical preset mapping.
struct RunRow {
    kernel: &'static str,
    machine: &'static str,
    exact: bool,
    /// Bytes staged into local memory across the launch (the mapping
    /// decision under test: 0 when Algorithm 1 declines every group).
    moved_in_bytes: u64,
    moved_out_bytes: u64,
    /// Peak scratchpad words of any block.
    smem_words: u64,
    modeled_cycles: u64,
}

/// One kernel × machine autotune outcome.
struct TuneRow {
    kernel: &'static str,
    machine: &'static str,
    winner: String,
    /// Divergence comparison key: scheme + tiles + dim placement +
    /// staging toggles, with machine-fixed properties (vector width)
    /// stripped so only genuine tuner decisions count.
    winner_key: String,
    winner_cycles: u64,
    simulated: usize,
    total: usize,
}

fn machine_config(name: &str) -> MachineConfig {
    desc::lookup(name).expect("registered machine").config()
}

fn run_preset(name: &'static str, mlabel: &'static str, size: i64) -> RunRow {
    let cfg = machine_config(mlabel);
    let (program, params, out) = tunespace::workload(name, size).expect("workload");
    let mut reference = ArrayStore::for_program(&program, &params).expect("store");
    tunespace::init_store(name, &mut reference, 42);
    let mut st = reference.clone();
    exec_program(&program, &params, &mut reference).expect("reference run");

    let cands = tunespace::candidates(name, &cfg, true).expect("candidate space");
    let preset = cands.iter().find(|c| c.preset).expect("pinned preset");
    let stats = execute_blocked(&preset.kernel, &params, &mut st, &cfg, true)
        .unwrap_or_else(|e| panic!("{name} on {mlabel}: {e}"));
    let exact = st.data(out).expect("output") == reference.data(out).expect("output");
    RunRow {
        kernel: name,
        machine: mlabel,
        exact,
        moved_in_bytes: stats.moved_in * cfg.word_bytes,
        moved_out_bytes: stats.moved_out * cfg.word_bytes,
        smem_words: stats.max_smem_words,
        modeled_cycles: stats.modeled_cycles,
    }
}

fn tune_machine(name: &'static str, mlabel: &'static str, size: i64, dir: &str) -> TuneRow {
    let mut cfg = machine_config(mlabel);
    cfg.artifact_dir = Some(dir.to_string());
    let cands = tunespace::candidates(name, &cfg, true).expect("candidate space");
    let (program, params, _) = tunespace::workload(name, size).expect("workload");
    let init = |st: &mut ArrayStore| tunespace::init_store(name, st, 42);
    let opts = TuneOptions {
        space_label: format!("bench-machines:{name}"),
        ..TuneOptions::default()
    };
    let out = tune(&program, &params, &init, &cands, &cfg, &opts)
        .unwrap_or_else(|e| panic!("tune {name} on {mlabel}: {e}"));
    let mut key = out.winner.clone();
    key.vector_width = 1;
    TuneRow {
        kernel: name,
        machine: mlabel,
        winner: out.winner.label(),
        winner_key: key.to_line(),
        winner_cycles: out.winner_cycles,
        simulated: out.simulated,
        total: out.total,
    }
}

fn render_json(mode: &str, runs: &[RunRow], tunes: &[TuneRow], pass: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"machine\": \"{}\", \"exact\": {}, \
             \"moved_in_bytes\": {}, \"moved_out_bytes\": {}, \"smem_words\": {}, \
             \"modeled_cycles\": {} }}{}\n",
            json_escape_free(r.kernel),
            json_escape_free(r.machine),
            r.exact,
            r.moved_in_bytes,
            r.moved_out_bytes,
            r.smem_words,
            r.modeled_cycles,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"tunes\": [\n");
    for (i, t) in tunes.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"machine\": \"{}\", \"winner\": \"{}\", \
             \"winner_cycles\": {}, \"simulated\": {}, \"candidates\": {} }}{}\n",
            json_escape_free(t.kernel),
            json_escape_free(t.machine),
            json_escape_free(&t.winner),
            t.winner_cycles,
            t.simulated,
            t.total,
            if i + 1 == tunes.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!("  ],\n  \"pass\": {pass}\n}}\n"));
    s
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    let size = if smoke { 8 } else { 16 };
    let check = std::env::var("POLYMEM_EXEC_CHECK").is_ok_and(|v| v == "1");

    let dir = std::env::temp_dir().join("polymem_bench_machines");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("artifact dir");
    let dir_s = dir.to_str().expect("utf8 temp dir").to_string();

    println!(
        "machine-backend acceptance harness ({mode} mode{})\n",
        if check { ", oracle cross-check on" } else { "" }
    );

    // Phase 1: the unchanged canonical mapping, bit-exact on every
    // machine, with the per-machine staging decisions recorded.
    let mut runs = Vec::new();
    for &name in &KERNELS {
        for &mlabel in &MACHINES {
            let r = run_preset(name, mlabel, size);
            println!(
                "{:<9} [{:<7}] exact: {:<3}  staged in/out {:>7}/{:>7} B  \
                 smem {:>5} words  {:>12} cycles",
                r.kernel,
                r.machine,
                if r.exact { "yes" } else { "NO" },
                r.moved_in_bytes,
                r.moved_out_bytes,
                r.smem_words,
                r.modeled_cycles,
            );
            runs.push(r);
        }
    }

    // Phase 2: the autotuner over the same candidate space per
    // machine — the spatial machine's placement-priced cost model and
    // tiny operand memories must move the winner.
    println!();
    let mut tunes = Vec::new();
    for &name in &KERNELS {
        for &mlabel in &MACHINES {
            let t = tune_machine(name, mlabel, size, &dir_s);
            println!(
                "tune {:<9} [{:<7}] winner {:<40} {:>12} cycles  ({}/{} simulated)",
                t.kernel, t.machine, t.winner, t.winner_cycles, t.simulated, t.total,
            );
            tunes.push(t);
        }
    }

    let mut failures = Vec::new();

    // Gate 1: bit-exactness, 4 machines × 5 kernels.
    for r in &runs {
        if !r.exact {
            failures.push(format!(
                "{}[{}]: output diverged from the reference interpreter",
                r.kernel, r.machine
            ));
        }
    }

    // Gate 2: PIM runs in place — zero staged bytes, and strictly
    // fewer than the GPU on at least two kernels.
    let moved = |machine: &str, kernel: &str| {
        runs.iter()
            .find(|r| r.machine == machine && r.kernel == kernel)
            .map(|r| r.moved_in_bytes)
            .unwrap_or(0)
    };
    let mut pim_strictly_fewer = 0usize;
    for &name in &KERNELS {
        let pim = moved("pim", name);
        if pim != 0 {
            failures.push(format!(
                "{name}[pim]: staged {pim} B despite in-place compute"
            ));
        }
        if pim < moved("gpu", name) {
            pim_strictly_fewer += 1;
        }
    }
    if pim_strictly_fewer < 2 {
        failures.push(format!(
            "pim staged strictly fewer bytes than gpu on only {pim_strictly_fewer} kernels (< 2)"
        ));
    }

    // Gate 3: cell's mandatory local store stages at least as much as
    // the GPU's benefit-gated staging wherever the GPU stages at all.
    for &name in &KERNELS {
        let (gpu, cell) = (moved("gpu", name), moved("cell", name));
        if cell < gpu {
            failures.push(format!(
                "{name}[cell]: must-stage moved {cell} B < gpu's {gpu} B"
            ));
        }
    }

    // Gate 4: the spatial machine's tuned winner differs from the
    // GPU's on at least two kernels.
    let winner_key = |machine: &str, kernel: &str| {
        tunes
            .iter()
            .find(|t| t.machine == machine && t.kernel == kernel)
            .map(|t| t.winner_key.clone())
            .unwrap_or_default()
    };
    let mut spatial_divergent = 0usize;
    for &name in &KERNELS {
        if winner_key("spatial", name) != winner_key("gpu", name) {
            spatial_divergent += 1;
        }
    }
    if spatial_divergent < 2 {
        failures.push(format!(
            "spatial tune winner matched gpu's on all but {spatial_divergent} kernels (need >= 2 divergent)"
        ));
    }

    let json = render_json(mode, &runs, &tunes, failures.is_empty());
    conclude("BENCH_machines.json", &json, &failures);
}
