//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! 1. **Reuse filter (Algorithm 1) on/off** — copying everything vs
//!    only beneficial partitions: scratchpad words and transfer counts.
//! 2. **Movement hoisting (§4.2) on/off** — occurrence counts of the
//!    matmul `C` buffer with and without hoisting past the k-tile loop.
//! 3. **Liveness (§3.1.4) on/off** — copy volumes for a Jacobi time
//!    block with the dependence-based minimisation vs the default.
//! 4. **Tile-size solver** — SQP-style continuous relaxation vs exact
//!    discrete search on the ME problem.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin ablations
//! ```

use polymem_core::deps::compute_deps;
use polymem_core::smem::liveness::optimize_movement;
use polymem_core::smem::{analyze_program, SmemConfig};
use polymem_core::tiling::cost::{CostModel, CostParams};
use polymem_core::tiling::{search_discrete, search_sqp};
use polymem_kernels::{jacobi, matmul, me};
use polymem_machine::MachineConfig;
use polymem_poly::dep::DepKind;
use std::collections::HashMap;

fn main() {
    reuse_filter_ablation();
    hoisting_ablation();
    liveness_ablation();
    solver_ablation();
}

/// Algorithm 1 vs copy-everything on a kernel with a no-reuse array.
fn reuse_filter_ablation() {
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};
    // Out[i][j] = Big[i][j] * X[j]: Big has zero reuse (rank = dim and
    // no overlap), X has order-of-magnitude reuse.
    let mut b = ProgramBuilder::new("mixed", ["N"]);
    b.array("Big", &[v("N"), v("N")]);
    b.array("X", &[v("N")]);
    b.array("Out", &[v("N"), v("N")]);
    b.stmt("S")
        .loops(&[
            ("i", LinExpr::c(0), v("N") - 1),
            ("j", LinExpr::c(0), v("N") - 1),
        ])
        .write("Out", &[v("i"), v("j")])
        .read("Big", &[v("i"), v("j")])
        .read("X", &[v("j")])
        .body(Expr::mul(Expr::Read(0), Expr::Read(1)))
        .done();
    let p = b.build().expect("valid");
    let n = 64i64;
    let filtered = analyze_program(
        &p,
        &SmemConfig {
            sample_params: vec![n],
            ..SmemConfig::default()
        },
    )
    .expect("plan");
    let copy_all = analyze_program(
        &p,
        &SmemConfig {
            sample_params: vec![n],
            must_copy_all: true,
            ..SmemConfig::default()
        },
    )
    .expect("plan");
    println!("== Ablation 1: Algorithm 1 reuse filter (N = {n}) ==");
    println!(
        "  with filter   : {} buffers, {} scratchpad words",
        filtered.buffers.len(),
        filtered.total_buffer_words(&[n]).expect("bounded")
    );
    println!(
        "  copy everything: {} buffers, {} scratchpad words",
        copy_all.buffers.len(),
        copy_all.total_buffer_words(&[n]).expect("bounded")
    );
    println!("  -> the filter skips the reuse-free Big/Out traffic and keeps X only\n");
}

/// §4.2 hoisting: occurrences with C's movement inside vs outside kT.
fn hoisting_ablation() {
    use polymem_core::smem::dataspace::collect_refs;
    use polymem_core::tiling::cost::BufferCost;
    let p = matmul::program();
    let c_idx = p.array_index("C").expect("C");
    let refs = collect_refs(&p, c_idx).expect("refs");
    let members: Vec<&_> = refs.iter().collect();
    let ranges = vec![1024.0, 1024.0, 1024.0];
    let t = [32.0, 32.0, 32.0];
    let params = CostParams::default();
    let cost_at = |placement: usize| {
        CostModel {
            buffers: vec![BufferCost::from_refs(
                "C",
                &members,
                &[0, 1],
                &[0, 1, 2],
                placement,
            )],
            loop_ranges: ranges.clone(),
        }
        .movement_cost(&t, &params)
    };
    let hoisted = cost_at(2);
    let naive = cost_at(3);
    println!("== Ablation 2: movement hoisting (matmul C, 1024^3, 32^3 tiles) ==");
    println!("  naive placement (inside kT): cost {naive:.0}");
    println!(
        "  hoisted (outside kT)       : cost {hoisted:.0}  ({:.0}x fewer)",
        naive / hoisted
    );
    println!();
}

/// §3.1.4 liveness vs default copy sets on a Jacobi time block.
fn liveness_ablation() {
    let p = jacobi::program();
    let deps = compute_deps(&p, &[DepKind::Flow]).expect("deps");
    let params = [16i64, 256];
    // Block = time rows 5..=8.
    let block_dom = {
        let mut d = p.stmts[0].domain.clone();
        let ncols = d.space().n_cols();
        let mut lo = vec![0i64; ncols];
        lo[0] = 1;
        lo[ncols - 1] = -5;
        d.add_constraint(polymem_poly::Constraint::ineq(lo));
        let mut hi = vec![0i64; ncols];
        hi[0] = -1;
        hi[ncols - 1] = 8;
        d.add_constraint(polymem_poly::Constraint::ineq(hi));
        d
    };
    let mut block = HashMap::new();
    block.insert(0usize, block_dom.clone());
    let plan = optimize_movement(&p, &deps, &block).expect("liveness");
    let a = p.array_index("A").expect("A");
    let cin = plan.copy_in_count(a, &params, 1 << 22).expect("count");
    let cout = plan.copy_out_count(a, &params, 1 << 22).expect("count");

    let mut view = p.clone();
    view.stmts[0].domain = block_dom;
    let default_plan = analyze_program(
        &view,
        &SmemConfig {
            sample_params: params.to_vec(),
            ..SmemConfig::default()
        },
    )
    .expect("plan");
    let din: u64 = default_plan
        .movement
        .iter()
        .map(|m| m.move_in_count(&params))
        .sum();
    let dout: u64 = default_plan
        .movement
        .iter()
        .map(|m| m.move_out_count(&params))
        .sum();
    println!("== Ablation 3: §3.1.4 liveness (Jacobi rows 5..8, N = 256) ==");
    println!("  default copy-in/out : {din} / {dout} elements");
    println!("  liveness copy-in/out: {cin} / {cout} elements");
    println!("  -> only the boundary rows cross the block\n");
}

/// SQP-style relaxation vs discrete enumeration on the ME problem.
fn solver_ablation() {
    let machine = MachineConfig::geforce_8800_gtx();
    let size = me::MeSize::square(1 << 22, 16);
    let problem = polymem_core::tiling::TileSizeProblem {
        cost: me::cost_model(&size),
        params: machine.cost_params(256.0),
        mem_limit: (machine.smem_bytes / machine.word_bytes) as f64,
    };
    let d = search_discrete(&problem, None);
    let s = search_sqp(&problem);
    println!("== Ablation 4: tile-size solvers (ME, 4M positions) ==");
    println!("  discrete: sizes {:?}, cost {:.0}", d.sizes, d.cost);
    println!(
        "  sqp     : sizes {:?}, cost {:.0} (method: {})",
        s.sizes, s.cost, s.method
    );
}
