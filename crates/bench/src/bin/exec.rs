//! Compiled-execution harness.
//!
//! Runs the five built-in kernels on the GPU and Cell machine models
//! with the compiled block execution engine off (per-point
//! interpreter) and on (bytecode bodies + strided address streams),
//! then
//!
//! * verifies outputs are bit-exact against the reference interpreter
//!   and between the two engines, and that every deterministic
//!   counter matches (`ExecStats` equality ignores only wall-clock
//!   compute time);
//! * measures the compute-phase wall time (`ExecStats::compute_ns`,
//!   best of three runs) in both modes;
//! * in full mode, asserts the compiled engine speeds up the compute
//!   phase by at least 5x on matmul and jacobi2d, the two kernels
//!   whose compute phases dominate; smoke mode (CI) reports the
//!   speedups without gating them, since the tiny smoke sizes are
//!   timer-granularity bound;
//! * writes `BENCH_exec.json` with the per-kernel numbers.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin exec            # full
//! cargo run --release -p polymem-bench --bin exec -- --smoke # CI
//! ```
//!
//! `POLYMEM_EXEC_CHECK=1` additionally runs the interpreter as an
//! oracle beside every compiled block (outside the timed window) and
//! panics on any divergence — the CI job sets it.
//!
//! Exits non-zero on any check failure.

use polymem_bench::harness::{best_of, conclude, json_escape_free, smoke_mode, store_for, Case};
use polymem_ir::ArrayStore;
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::{execute_blocked, ExecStats, MachineConfig};

fn cases(smoke: bool) -> Vec<Case> {
    let mut out = Vec::new();

    let size = if smoke {
        me::MeSize {
            ni: 16,
            nj: 16,
            ws: 2,
        }
    } else {
        me::MeSize {
            ni: 32,
            nj: 32,
            ws: 3,
        }
    };
    let p = me::program();
    let prm = me::params(&size);
    out.push(Case {
        name: "me",
        base: store_for(&p, &prm, |st| me::init_store(st, 7)),
        program: p,
        kernel: me::blocked_seq_kernel(4, 4, true),
        params: prm,
        check: "Sad",
    });

    let s = if smoke {
        jacobi::JacobiSize { n: 32, t: 2 }
    } else {
        jacobi::JacobiSize { n: 256, t: 4 }
    };
    let p = jacobi::program();
    let prm = jacobi::params(&s);
    out.push(Case {
        name: "jacobi",
        base: store_for(&p, &prm, |st| jacobi::init_store(st, 8)),
        program: p,
        kernel: jacobi::stepwise_kernel(16, true),
        params: prm,
        check: "A",
    });

    let (t, n) = if smoke { (2, 8) } else { (4, 32) };
    let p = jacobi2d::program();
    let prm = jacobi2d::params(t, n);
    out.push(Case {
        name: "jacobi2d",
        base: store_for(&p, &prm, |st| jacobi2d::init_store(st, 9)),
        program: p,
        kernel: jacobi2d::stepwise_seq_kernel(4, if smoke { 4 } else { 8 }, true),
        params: prm,
        check: "A",
    });

    let n = if smoke { 8 } else { 32 };
    let p = matmul::program();
    let prm = vec![n];
    out.push(Case {
        name: "matmul",
        base: store_for(&p, &prm, |st| matmul::init_store(st, 10)),
        program: p,
        kernel: matmul::blocked_kernel_hoisted(
            if smoke { 4 } else { 8 },
            if smoke { 4 } else { 8 },
            if smoke { 4 } else { 8 },
            true,
        ),
        params: prm,
        check: "C",
    });

    let s = if smoke {
        conv2d::ConvSize { n: 7, k: 3 }
    } else {
        conv2d::ConvSize { n: 23, k: 3 }
    };
    let p = conv2d::program();
    let prm = conv2d::params(&s);
    out.push(Case {
        name: "conv2d",
        base: store_for(&p, &prm, |st| conv2d::init_store(st, 11)),
        program: p,
        kernel: conv2d::blocked_seq_kernel(3, if smoke { 3 } else { 5 }, true),
        params: prm,
        check: "Out",
    });

    out
}

struct ModeResult {
    stats: ExecStats,
    store: ArrayStore,
    /// Best-of-three compute-phase wall time.
    min_compute_ns: u64,
}

struct MachineResult {
    machine: &'static str,
    interp: ModeResult,
    compiled: ModeResult,
    bit_exact: bool,
    stats_equal: bool,
}

struct KernelResult {
    name: &'static str,
    machines: Vec<MachineResult>,
}

impl MachineResult {
    /// Compute-phase speedup: interpreted over compiled wall time.
    fn speedup(&self) -> f64 {
        self.interp.min_compute_ns as f64 / self.compiled.min_compute_ns.max(1) as f64
    }
}

fn run_mode(case: &Case, cfg: &MachineConfig, compiled: bool) -> ModeResult {
    let mut config = cfg.clone();
    config.compiled_exec = compiled;
    let (ns, (stats, store)) = best_of(3, || {
        let mut store = case.base.clone();
        let stats = execute_blocked(&case.kernel, &case.params, &mut store, &config, false)
            .expect("execution succeeds");
        (stats.compute_ns as f64, (stats, store))
    });
    ModeResult {
        stats,
        store,
        min_compute_ns: ns as u64,
    }
}

fn run_case(case: &Case) -> KernelResult {
    let reference = case.reference();
    let mut machines = Vec::new();
    for (label, cfg) in [
        ("gpu", MachineConfig::geforce_8800_gtx()),
        ("cell", MachineConfig::cell_like()),
    ] {
        let interp = run_mode(case, &cfg, false);
        let compiled = run_mode(case, &cfg, true);
        let bit_exact = case.output_matches(&interp.store, &reference)
            && case.output_matches(&compiled.store, &reference);
        // `ExecStats` equality compares every deterministic counter
        // (instances, memory traffic, plan-cache hits, modeled cycles,
        // DMA) and ignores wall-clock compute time.
        let stats_equal = interp.stats == compiled.stats;
        machines.push(MachineResult {
            machine: label,
            interp,
            compiled,
            bit_exact,
            stats_equal,
        });
    }
    KernelResult {
        name: case.name,
        machines,
    }
}

fn render_json(mode: &str, kernels: &[KernelResult], target: f64, pass: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n      \"runs\": [\n",
            json_escape_free(k.name)
        ));
        for (j, m) in k.machines.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"machine\": \"{}\", \"interp_compute_ns\": {}, \
                 \"compiled_compute_ns\": {}, \"speedup\": {:.2}, \
                 \"instances\": {}, \"bit_exact\": {}, \"stats_equal\": {} }}{}\n",
                json_escape_free(m.machine),
                m.interp.min_compute_ns,
                m.compiled.min_compute_ns,
                m.speedup(),
                m.compiled.stats.instances,
                m.bit_exact,
                m.stats_equal,
                if j + 1 == k.machines.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_target\": {target:.1},\n  \"pass\": {pass}\n}}\n"
    ));
    out
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    let target = 5.0;
    let check = std::env::var("POLYMEM_EXEC_CHECK").is_ok_and(|v| v == "1");

    println!(
        "compiled-execution harness ({mode} mode{})\n",
        if check { ", oracle cross-check on" } else { "" }
    );
    let mut results = Vec::new();
    for case in cases(smoke) {
        let r = run_case(&case);
        for m in &r.machines {
            println!(
                "{:<9} [{:<4}] compute {:>12} -> {:>12} ns ({:6.2}x)  instances {:>8}  bit-exact: {}  stats: {}",
                r.name,
                m.machine,
                m.interp.min_compute_ns,
                m.compiled.min_compute_ns,
                m.speedup(),
                m.compiled.stats.instances,
                if m.bit_exact { "yes" } else { "NO" },
                if m.stats_equal { "equal" } else { "DIFFER" },
            );
        }
        results.push(r);
    }

    let mut failures = Vec::new();

    // Both engines bit-exact against the reference, identical
    // counters, on every kernel and both machines.
    for r in &results {
        for m in &r.machines {
            if !m.bit_exact {
                failures.push(format!("{}[{}]: output mismatch", r.name, m.machine));
            }
            if !m.stats_equal {
                failures.push(format!("{}[{}]: counter mismatch", r.name, m.machine));
            }
        }
    }

    // The speedup gate: compute-phase-dominated kernels must get at
    // least `target`x from the compiled engine. Full mode only —
    // smoke sizes finish in microseconds and measure the timer.
    if !smoke {
        for name in ["matmul", "jacobi2d"] {
            let r = results.iter().find(|r| r.name == name).expect("case");
            for m in &r.machines {
                if m.speedup() < target {
                    failures.push(format!(
                        "{name}[{}]: compute speedup {:.2}x below {target}x",
                        m.machine,
                        m.speedup()
                    ));
                }
            }
        }
    }

    let json = render_json(mode, &results, target, failures.is_empty());
    conclude("BENCH_exec.json", &json, &failures);
}
