//! Autotuner acceptance harness.
//!
//! Runs `machine::tune` over the pinned candidate spaces
//! (`tunespace`) for the built-in kernels on the GPU and Cell machine
//! models and gates the four claims the tuner ships with:
//!
//! * **tuned beats preset** — the winner's simulated modeled cycles
//!   are never worse than the hand-picked preset mapping's on any
//!   kernel × machine pair, and strictly better on at least two pairs;
//! * **pruning works** — on the matmul and ME smoke spaces the
//!   cost-model-pruned search simulates at least 5× fewer candidates
//!   than an exhaustive sweep while finding a winner with the same
//!   simulated cycles;
//! * **artifacts close the loop** — an immediate re-tune with the same
//!   artifact store answers from the persisted `TuneArtifact`
//!   (`plan_source == "artifact"`, zero simulations, same winner);
//! * **everything simulated is bit-exact** — every candidate the
//!   search simulated matched the reference interpreter exactly.
//!
//! The predicted-vs-simulated Spearman rank correlation over the
//! simulated frontier is recorded per run (reported, not gated — the
//! frontier is small and ties are common).
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin tune            # full
//! cargo run --release -p polymem-bench --bin tune -- --smoke # CI
//! ```
//!
//! `POLYMEM_EXEC_CHECK=1` runs the reference interpreter beside every
//! simulated block; the CI job sets it. All gated quantities are
//! deterministic counters. Writes `BENCH_tune.json`; exits non-zero on
//! any gate failure.

use polymem_bench::harness::{conclude, json_escape_free, smoke_mode};
use polymem_ir::ArrayStore;
use polymem_kernels::tunespace;
use polymem_machine::{tune, MachineConfig, TuneOptions, TuneOutcome};

const KERNELS_FULL: [&str; 5] = ["matmul", "me", "jacobi", "jacobi2d", "conv2d"];
const KERNELS_SMOKE: [&str; 2] = ["matmul", "me"];

fn machines(dir: &str) -> [(&'static str, MachineConfig); 2] {
    let mut gpu = MachineConfig::geforce_8800_gtx();
    gpu.artifact_dir = Some(dir.to_string());
    let mut cell = MachineConfig::cell_like();
    cell.artifact_dir = Some(dir.to_string());
    [("gpu", gpu), ("cell", cell)]
}

fn tune_kernel(
    name: &str,
    base: &MachineConfig,
    smoke: bool,
    size: i64,
    opts: &TuneOptions,
) -> TuneOutcome {
    let cands = tunespace::candidates(name, base, smoke).expect("candidate space");
    let (program, params, _) = tunespace::workload(name, size).expect("workload");
    let init = |st: &mut ArrayStore| tunespace::init_store(name, st, 42);
    tune(&program, &params, &init, &cands, base, opts).expect("tune succeeds")
}

/// Average-tie ranks of `v` (1-based).
fn ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
    let mut r = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Spearman rank correlation; `None` when degenerate (fewer than two
/// points, or either side constant).
fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let (rx, ry) = (ranks(xs), ranks(ys));
    let n = xs.len() as f64;
    let (mx, my) = (rx.iter().sum::<f64>() / n, ry.iter().sum::<f64>() / n);
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for i in 0..xs.len() {
        let (a, b) = (rx[i] - mx, ry[i] - my);
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        return None;
    }
    Some(num / (dx * dy).sqrt())
}

struct RunResult {
    kernel: &'static str,
    machine: &'static str,
    total: usize,
    simulated: usize,
    preset_cycles: Option<u64>,
    tuned_cycles: u64,
    winner: String,
    spearman: Option<f64>,
    all_exact: bool,
    warm_source: &'static str,
    warm_simulated: usize,
    warm_same_winner: bool,
}

struct PruneResult {
    kernel: &'static str,
    machine: &'static str,
    exhaustive_simulated: usize,
    pruned_simulated: usize,
    same_winner: bool,
}

impl PruneResult {
    fn ratio(&self) -> f64 {
        self.exhaustive_simulated as f64 / self.pruned_simulated.max(1) as f64
    }
}

fn fmt_opt_f(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.4}"))
        .unwrap_or_else(|| "null".into())
}

fn render_json(mode: &str, runs: &[RunResult], prunes: &[PruneResult], pass: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"machine\": \"{}\", \"candidates\": {}, \"simulated\": {}, \
             \"preset_cycles\": {}, \"tuned_cycles\": {}, \"winner\": \"{}\", \"spearman\": {}, \
             \"all_exact\": {}, \"warm_plan_source\": \"{}\", \"warm_simulated\": {}, \
             \"warm_same_winner\": {} }}{}\n",
            json_escape_free(r.kernel),
            json_escape_free(r.machine),
            r.total,
            r.simulated,
            r.preset_cycles.map(|c| c.to_string()).unwrap_or_else(|| "null".into()),
            r.tuned_cycles,
            json_escape_free(&r.winner),
            fmt_opt_f(r.spearman),
            r.all_exact,
            r.warm_source,
            r.warm_simulated,
            r.warm_same_winner,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"prune\": [\n");
    for (i, p) in prunes.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"machine\": \"{}\", \"exhaustive_simulated\": {}, \
             \"pruned_simulated\": {}, \"ratio\": {:.2}, \"same_winner\": {} }}{}\n",
            json_escape_free(p.kernel),
            json_escape_free(p.machine),
            p.exhaustive_simulated,
            p.pruned_simulated,
            p.ratio(),
            p.same_winner,
            if i + 1 == prunes.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!("  ],\n  \"pass\": {pass}\n}}\n"));
    out
}

fn main() {
    let smoke = smoke_mode();
    let mode = if smoke { "smoke" } else { "full" };
    let kernels: &[&'static str] = if smoke { &KERNELS_SMOKE } else { &KERNELS_FULL };
    let size = if smoke { 8 } else { 16 };
    let check = std::env::var("POLYMEM_EXEC_CHECK").is_ok_and(|v| v == "1");

    let dir = std::env::temp_dir().join("polymem_bench_tune");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("artifact dir");
    let dir_s = dir.to_str().expect("utf8 temp dir").to_string();

    println!(
        "autotuner acceptance harness ({mode} mode{})\n",
        if check { ", oracle cross-check on" } else { "" }
    );

    let mut runs = Vec::new();
    for &name in kernels {
        for (mlabel, base) in machines(&dir_s) {
            let opts = TuneOptions {
                space_label: format!("bench:{name}"),
                ..TuneOptions::default()
            };
            let cold = tune_kernel(name, &base, smoke, size, &opts);
            let warm = tune_kernel(name, &base, smoke, size, &opts);

            let preset_cycles = cold
                .rows
                .iter()
                .find(|r| r.preset)
                .and_then(|r| r.simulated);
            let simmed: Vec<&_> = cold.rows.iter().filter(|r| r.simulated.is_some()).collect();
            let rho = spearman(
                &simmed
                    .iter()
                    .map(|r| r.predicted as f64)
                    .collect::<Vec<_>>(),
                &simmed
                    .iter()
                    .map(|r| r.simulated.unwrap() as f64)
                    .collect::<Vec<_>>(),
            );
            let r = RunResult {
                kernel: name,
                machine: mlabel,
                total: cold.total,
                simulated: cold.simulated,
                preset_cycles,
                tuned_cycles: cold.winner_cycles,
                winner: cold.winner.label(),
                spearman: rho,
                all_exact: cold.rows.iter().all(|r| r.simulated.is_none() || r.exact),
                warm_source: warm.plan_source,
                warm_simulated: warm.simulated,
                warm_same_winner: warm.winner.to_line() == cold.winner.to_line()
                    && warm.winner_cycles == cold.winner_cycles,
            };
            println!(
                "{:<9} [{:<4}] {:>3} candidates, {:>2} simulated  preset {:>8}  tuned {:>8} ({})  \
                 spearman {}  warm: {}/{} sims",
                r.kernel,
                r.machine,
                r.total,
                r.simulated,
                r.preset_cycles
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.tuned_cycles,
                r.winner,
                fmt_opt_f(r.spearman),
                r.warm_source,
                r.warm_simulated,
            );
            runs.push(r);
        }
    }

    // Pruning acceptance on the smoke spaces (bounded even in full
    // mode): exhaustive sweep vs the pruned frontier, forced past the
    // artifact store so both genuinely search.
    println!();
    let mut prunes = Vec::new();
    for name in ["matmul", "me"] {
        for (mlabel, base) in machines(&dir_s) {
            let ex = tune_kernel(
                name,
                &base,
                true,
                8,
                &TuneOptions {
                    exhaustive: true,
                    force: true,
                    space_label: format!("bench:{name}:ex"),
                    ..TuneOptions::default()
                },
            );
            let pr = tune_kernel(
                name,
                &base,
                true,
                8,
                &TuneOptions {
                    top_k: 2,
                    force: true,
                    space_label: format!("bench:{name}:pruned"),
                    ..TuneOptions::default()
                },
            );
            let p = PruneResult {
                kernel: name,
                machine: mlabel,
                exhaustive_simulated: ex.simulated,
                pruned_simulated: pr.simulated,
                same_winner: pr.winner_cycles == ex.winner_cycles,
            };
            println!(
                "prune {:<9} [{:<4}] exhaustive {:>3} sims vs pruned {:>2} ({:>5.1}x)  same winner: {}",
                p.kernel,
                p.machine,
                p.exhaustive_simulated,
                p.pruned_simulated,
                p.ratio(),
                if p.same_winner { "yes" } else { "NO" },
            );
            prunes.push(p);
        }
    }

    let mut failures = Vec::new();

    let mut strictly_better = 0usize;
    for r in &runs {
        match r.preset_cycles {
            None => failures.push(format!(
                "{}[{}]: preset mapping was not simulated",
                r.kernel, r.machine
            )),
            Some(p) => {
                if r.tuned_cycles > p {
                    failures.push(format!(
                        "{}[{}]: tuned {} cycles worse than preset {}",
                        r.kernel, r.machine, r.tuned_cycles, p
                    ));
                }
                if r.tuned_cycles < p {
                    strictly_better += 1;
                }
            }
        }
        if r.simulated == 0 || r.simulated >= r.total {
            failures.push(format!(
                "{}[{}]: pruning inactive ({} of {} simulated)",
                r.kernel, r.machine, r.simulated, r.total
            ));
        }
        if !r.all_exact {
            failures.push(format!(
                "{}[{}]: a simulated candidate diverged from the reference",
                r.kernel, r.machine
            ));
        }
        if r.warm_source != "artifact" || r.warm_simulated != 0 {
            failures.push(format!(
                "{}[{}]: warm re-tune re-searched ({}, {} sims)",
                r.kernel, r.machine, r.warm_source, r.warm_simulated
            ));
        }
        if !r.warm_same_winner {
            failures.push(format!(
                "{}[{}]: warm winner differs from cold",
                r.kernel, r.machine
            ));
        }
    }
    if strictly_better < 2 {
        failures.push(format!(
            "tuned strictly beat the preset on only {strictly_better} kernel-machine pairs (< 2)"
        ));
    }

    for p in &prunes {
        if p.ratio() < 5.0 {
            failures.push(format!(
                "prune {}[{}]: only {:.1}x fewer simulations (< 5x)",
                p.kernel,
                p.machine,
                p.ratio()
            ));
        }
        if !p.same_winner {
            failures.push(format!(
                "prune {}[{}]: pruned search missed the exhaustive optimum",
                p.kernel, p.machine
            ));
        }
    }

    let json = render_json(mode, &runs, &prunes, failures.is_empty());
    conclude("BENCH_tune.json", &json, &failures);
}
