//! Plan-cache speedup harness (fig. 4/5-style kernels, compiler
//! *included* in the wall-clock).
//!
//! The functional executor used to re-run the whole §3 pipeline for
//! every block of every round. With the compile-once-per-shape plan
//! cache, the pipeline runs once per kernel shape and each block just
//! evaluates the symbolic plan at its fixed-dim values. This harness
//! measures that end-to-end: for the ME and Jacobi scratchpad
//! configurations it times `execute_blocked` (which contains the
//! compiler) with the cache on and off, verifies the outputs are
//! bit-exact, and reports the ratio. Many small blocks make the
//! compiler the dominant cost, which is exactly the regime the cache
//! targets.
//!
//! ```sh
//! cargo run --release -p polymem-bench --bin cache_speedup
//! ```
//!
//! Exits non-zero if outputs differ or the mean speedup is < 5×.

use polymem_ir::ArrayStore;
use polymem_kernels::{jacobi, me};
use polymem_machine::{execute_blocked, BlockedKernel, ExecStats, MachineConfig};
use std::time::Instant;

struct Case {
    name: &'static str,
    kernel: BlockedKernel,
    params: Vec<i64>,
    base: ArrayStore,
    check: &'static str,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    // ME (fig. 4 kernel): 32x32 frame in 2x2 tiles -> 256 blocks, each
    // with a trivial 2x2 x ws^2 SAD — compile-bound without the cache.
    let size = me::MeSize {
        ni: 32,
        nj: 32,
        ws: 3,
    };
    let p = me::program();
    let mut st = ArrayStore::for_program(&p, &me::params(&size)).expect("store");
    me::init_store(&mut st, 7);
    out.push(Case {
        name: "ME 32x32 (2x2 tiles, 256 blocks)",
        kernel: me::blocked_kernel(2, 2, true),
        params: me::params(&size),
        base: st,
        check: "Sad",
    });
    // Jacobi stepwise (fig. 5 kernel): 4 rounds x 64 space blocks.
    let s = jacobi::JacobiSize { n: 128, t: 4 };
    let p = jacobi::program();
    let mut st = ArrayStore::for_program(&p, &jacobi::params(&s)).expect("store");
    jacobi::init_store(&mut st, 8);
    out.push(Case {
        name: "Jacobi N=128 (tile 2, 4 rounds x 64 blocks)",
        kernel: jacobi::stepwise_kernel(2, true),
        params: jacobi::params(&s),
        base: st,
        check: "A",
    });
    out
}

const REPS: usize = 3;

/// Best-of-[`REPS`] wall-clock for one configuration (minimum filters
/// out scheduler noise; the outputs of every rep are identical since
/// execution is deterministic).
fn timed_run(case: &Case, plan_cache: bool) -> (f64, ArrayStore, ExecStats) {
    let mut cfg = MachineConfig::geforce_8800_gtx();
    cfg.plan_cache = plan_cache;
    let mut best: Option<(f64, ArrayStore, ExecStats)> = None;
    for _ in 0..REPS {
        let mut st = case.base.clone();
        let t0 = Instant::now();
        let stats = execute_blocked(&case.kernel, &case.params, &mut st, &cfg, false)
            .expect("execution succeeds");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|(b, _, _)| ms < *b) {
            best = Some((ms, st, stats));
        }
    }
    best.expect("REPS > 0")
}

fn main() {
    let mut ok = true;
    let mut speedups = Vec::new();
    println!("plan-cache speedup (wall-clock including the compiler, best of {REPS})\n");
    for case in cases() {
        // Warm the process (allocator, page faults) before timing.
        let _ = timed_run(&case, false);
        let (ms_off, st_off, s_off) = timed_run(&case, false);
        let (ms_on, st_on, s_on) = timed_run(&case, true);
        let exact =
            st_on.data(case.check).expect("output") == st_off.data(case.check).expect("output");
        ok &= exact;
        let speedup = ms_off / ms_on.max(1e-9);
        speedups.push(speedup);
        println!("{}", case.name);
        println!(
            "  cache off: {ms_off:8.2} ms  (hits {}, misses {})",
            s_off.plan_cache_hits, s_off.plan_cache_misses
        );
        println!(
            "  cache on:  {ms_on:8.2} ms  (hits {}, misses {})",
            s_on.plan_cache_hits, s_on.plan_cache_misses
        );
        println!(
            "  speedup:   {speedup:8.2}x   outputs bit-exact: {}\n",
            if exact { "yes" } else { "NO" }
        );
        ok &= s_on.plan_cache_hits > 0;
    }
    let mean = speedups
        .iter()
        .product::<f64>()
        .powf(1.0 / speedups.len() as f64);
    println!("geometric-mean speedup: {mean:.2}x (target >= 5x)");
    if !ok || mean < 5.0 {
        std::process::exit(1);
    }
}
