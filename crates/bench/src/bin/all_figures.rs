//! Reproduce every figure of the paper's evaluation in one run.
fn main() {
    for fig in [
        polymem_bench::figure4(),
        polymem_bench::figure5(),
        polymem_bench::figure6(),
        polymem_bench::figure7(),
        polymem_bench::figure8(),
    ] {
        println!("{}", fig.to_table());
    }
}
