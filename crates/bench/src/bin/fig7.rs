//! Reproduce the paper's Figure 7 (see EXPERIMENTS.md).
fn main() {
    print!("{}", polymem_bench::figure7().to_table());
}
