//! Reproduce the paper's Figure 5 (see EXPERIMENTS.md).
fn main() {
    print!("{}", polymem_bench::figure5().to_table());
}
