//! Shared machinery for the `BENCH_*.json` harness binaries
//! (`polycore`, `dma`, `exec`, `hier`).
//!
//! Each binary benches the five built-in kernels on the machine
//! models, checks outputs against the reference interpreter, gates on
//! a bench-specific quantity, writes a JSON report and exits non-zero
//! on any failure. The case bookkeeping, best-of-N timing,
//! bit-exactness plumbing and report ritual are identical across them
//! and live here; each binary keeps only its own case sizes, measured
//! quantities and gates.

use polymem_ir::{exec_program, ArrayStore, Program};
use polymem_machine::BlockedKernel;

/// One benchable kernel: a program, its blocked mapping, concrete
/// parameters, an initialized input store and the output array to
/// check.
pub struct Case {
    /// Kernel name as printed and written to JSON.
    pub name: &'static str,
    /// The untiled source program (reference semantics).
    pub program: Program,
    /// The blocked mapping under test.
    pub kernel: BlockedKernel,
    /// Concrete structure parameters.
    pub params: Vec<i64>,
    /// Initialized input arrays; every run starts from a clone.
    pub base: ArrayStore,
    /// Name of the output array compared for bit-exactness.
    pub check: &'static str,
}

impl Case {
    /// Run the reference interpreter on a clone of the base store.
    pub fn reference(&self) -> ArrayStore {
        let mut st = self.base.clone();
        exec_program(&self.program, &self.params, &mut st).expect("reference interpreter");
        st
    }

    /// Whether `store`'s checked output equals the reference's.
    pub fn output_matches(&self, store: &ArrayStore, reference: &ArrayStore) -> bool {
        store.data(self.check).expect("output")
            == reference.data(self.check).expect("reference output")
    }
}

/// Build a store for `program` at `params` and initialize it.
pub fn store_for(
    program: &Program,
    params: &[i64],
    init: impl FnOnce(&mut ArrayStore),
) -> ArrayStore {
    let mut st = ArrayStore::for_program(program, params).expect("store");
    init(&mut st);
    st
}

/// Run `run` `reps` times and keep the iteration with the smallest
/// measured value (first element of the returned pair). The payload of
/// the best iteration rides along, so timed runs can hand back stores
/// or stats without re-running.
pub fn best_of<T>(reps: usize, mut run: impl FnMut() -> (f64, T)) -> (f64, T) {
    assert!(reps > 0, "best_of needs at least one rep");
    let mut best = run();
    for _ in 1..reps {
        let cur = run();
        if cur.0 < best.0 {
            best = cur;
        }
    }
    best
}

/// Whether `--smoke` was passed (CI mode: tiny sizes, timing gates
/// reported but not asserted).
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// All strings the harnesses emit into JSON are static identifiers;
/// assert that rather than escaping.
pub fn json_escape_free(s: &str) -> &str {
    assert!(
        s.chars().all(|c| c != '"' && c != '\\' && !c.is_control()),
        "bench JSON strings must not need escaping: {s:?}"
    );
    s
}

/// Write the report, print the failures, and exit — zero iff there
/// were none. The caller embeds `failures.is_empty()` in the JSON as
/// its `pass` field before calling.
pub fn conclude(path: &str, json: &str, failures: &[String]) -> ! {
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    for f in failures {
        eprintln!("FAILED: {f}");
    }
    let pass = failures.is_empty();
    println!("\nwrote {path} (pass: {pass})");
    std::process::exit(if pass { 0 } else { 1 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_keeps_minimum_and_its_payload() {
        let mut vals = [3.0, 1.0, 2.0].into_iter();
        let (t, tag) = best_of(3, || {
            let v = vals.next().unwrap();
            (v, v as i64 * 10)
        });
        assert_eq!(t, 1.0);
        assert_eq!(tag, 10);
    }

    #[test]
    #[should_panic(expected = "must not need escaping")]
    fn json_escape_free_rejects_quotes() {
        json_escape_free("a\"b");
    }
}
