//! Figure-reproduction harness for the paper's evaluation (§6).
//!
//! The paper's quantitative results are Figures 4–8 (there are no
//! numbered tables). Each `fig*` binary in `src/bin/` regenerates the
//! corresponding figure's series on the simulated GeForce 8800 GTX and
//! prints the same rows the paper plots; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison. This library holds the shared
//! series/reporting machinery plus the per-figure generators, so the
//! binaries stay thin and integration tests can assert the *shapes*
//! (who wins, by what factor, where optima fall) directly.

use polymem_kernels::{jacobi, me};
use polymem_machine::MachineConfig;

pub mod harness;

/// One plotted series: a label and (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, time-in-ms)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// The y value at a given x (exact match), if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// The x of the minimal y.
    pub fn argmin(&self) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(x, _)| *x)
    }
}

/// A whole figure: title, axis labels and series.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Figure identifier, e.g. `"Figure 4"`.
    pub id: String,
    /// Title echoing the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// All series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text table (one row per x, one column per
    /// series) — the form the binaries print and EXPERIMENTS.md quotes.
    pub fn to_table(&self) -> String {
        let mut out = format!("# {} — {}\n", self.id, self.title);
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        out.push_str(&format!("{:>16}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("  {:>24}", s.label));
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{:>16}", fmt_size(x)));
            for s in &self.series {
                match s.at(x) {
                    Some(y) => out.push_str(&format!("  {:>21.3} ms", y)),
                    None => out.push_str(&format!("  {:>24}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Human-friendly size formatting (k/M suffixes) for x values.
pub fn fmt_size(x: f64) -> String {
    let v = x as u64;
    if v >= 1 << 20 && v.is_multiple_of(1 << 20) {
        format!("{}M", v >> 20)
    } else if v >= 1 << 10 && v.is_multiple_of(1 << 10) {
        format!("{}k", v >> 10)
    } else {
        format!("{v}")
    }
}

/// Figure 4: ME execution time vs problem size for GPU without
/// scratchpad, GPU with scratchpad, and CPU (paper: smem ≈ 8× over
/// DRAM-only, >100× over CPU).
pub fn figure4() -> Figure {
    let gpu = MachineConfig::geforce_8800_gtx();
    let cpu = MachineConfig::host_cpu();
    let sizes: Vec<u64> = vec![
        256 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        9 << 20,
        16 << 20,
        64 << 20,
    ];
    let mut dram = Series {
        label: "GPU w/o scratchpad".into(),
        points: vec![],
    };
    let mut smem = Series {
        label: "GPU with scratchpad".into(),
        points: vec![],
    };
    let mut host = Series {
        label: "CPU".into(),
        points: vec![],
    };
    for &total in &sizes {
        let s = me::MeSize::square(total, 16);
        let x = total as f64;
        let pd = me::profile(&s, (32, 16), 32, 256, false, &gpu);
        let ps = me::profile(&s, (32, 16), 32, 256, true, &gpu);
        dram.points
            .push((x, pd.estimate(&gpu).expect("fits").total_ms));
        smem.points
            .push((x, ps.estimate(&gpu).expect("fits").total_ms));
        host.points.push((x, pd.estimate_cpu(&cpu).total_ms));
    }
    Figure {
        id: "Figure 4".into(),
        title: "Execution time of Mpeg4 ME for various problem sizes".into(),
        x_label: "Problem Size".into(),
        series: vec![dram, smem, host],
    }
}

/// Figure 5: 1-D Jacobi execution time vs problem size (paper: smem ≈
/// 10× over DRAM-only, 15× over CPU).
pub fn figure5() -> Figure {
    let gpu = MachineConfig::geforce_8800_gtx();
    let cpu = MachineConfig::host_cpu();
    let sizes: Vec<u64> = vec![
        8 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
    ];
    let mut dram = Series {
        label: "GPU w/o scratchpad".into(),
        points: vec![],
    };
    let mut smem = Series {
        label: "GPU with scratchpad".into(),
        points: vec![],
    };
    let mut host = Series {
        label: "CPU".into(),
        points: vec![],
    };
    for &n in &sizes {
        let s = jacobi::JacobiSize {
            n: n as i64,
            t: 4096,
        };
        let x = n as f64;
        let pd = jacobi::profile_tiled(&s, 32, 256, 128, 64, false, &gpu);
        let ps = jacobi::profile_tiled(&s, 32, 256, 128, 64, true, &gpu);
        dram.points
            .push((x, pd.estimate(&gpu).expect("fits").total_ms));
        smem.points
            .push((x, ps.estimate(&gpu).expect("fits").total_ms));
        host.points
            .push((x, jacobi::profile_cpu(&s).estimate_cpu(&cpu).total_ms));
    }
    Figure {
        id: "Figure 5".into(),
        title: "Execution time of 1-D Jacobi for various problem sizes".into(),
        x_label: "Problem Size".into(),
        series: vec![dram, smem, host],
    }
}

/// Figure 6: ME execution time for varying tile sizes across problem
/// sizes 8M–64M (paper: the §4.3 search's (32,16,16,16) wins).
pub fn figure6() -> Figure {
    let gpu = MachineConfig::geforce_8800_gtx();
    let sizes: Vec<u64> = vec![8 << 20, 16 << 20, 32 << 20, 64 << 20];
    let tile_options: Vec<(i64, i64)> =
        vec![(8, 8), (16, 8), (16, 16), (32, 16), (32, 32), (64, 16)];
    let mut series: Vec<Series> = tile_options
        .iter()
        .map(|(ti, tj)| Series {
            label: format!("Tile Size = {ti},{tj},16,16"),
            points: vec![],
        })
        .collect();
    for &total in &sizes {
        let s = me::MeSize::square(total, 16);
        for (k, &(ti, tj)) in tile_options.iter().enumerate() {
            let p = me::profile(&s, (ti, tj), 32, 256, true, &gpu);
            series[k]
                .points
                .push((total as f64, p.estimate(&gpu).expect("fits").total_ms));
        }
    }
    Figure {
        id: "Figure 6".into(),
        title: "Execution time of Mpeg4 ME kernel for varying tile sizes".into(),
        x_label: "Problem Size".into(),
        series,
    }
}

/// Figure 7: 1-D Jacobi, scratchpad-resident sizes, execution time vs
/// thread-block count (paper: U-shape; sync cost dominates at high
/// block counts).
pub fn figure7() -> Figure {
    let gpu = MachineConfig::geforce_8800_gtx();
    let block_counts: Vec<u64> = vec![25, 50, 75, 100, 128, 150, 175, 200, 225, 256];
    let sizes: Vec<i64> = vec![8 << 10, 16 << 10, 32 << 10];
    let mut series: Vec<Series> = sizes
        .iter()
        .map(|n| Series {
            label: format!("N = {}", fmt_size(*n as f64)),
            points: vec![],
        })
        .collect();
    for (k, &n) in sizes.iter().enumerate() {
        let s = jacobi::JacobiSize { n, t: 4096 };
        for &b in &block_counts {
            let p = jacobi::profile_resident(&s, 32, b, 64, &gpu);
            series[k]
                .points
                .push((b as f64, p.estimate(&gpu).expect("fits").total_ms));
        }
    }
    Figure {
        id: "Figure 7".into(),
        title: "1-D Jacobi, smaller problem sizes, varying thread blocks".into(),
        x_label: "Thread Blocks".into(),
        series,
    }
}

/// Figure 8: 1-D Jacobi, larger problem sizes, execution time vs
/// (time, space) tile size under M_up = 2^9 words (paper: the search's
/// (32, 256) wins).
pub fn figure8() -> Figure {
    let gpu = MachineConfig::geforce_8800_gtx();
    let sizes: Vec<i64> = vec![64 << 10, 128 << 10, 256 << 10, 512 << 10];
    let tile_options: Vec<(i64, i64)> = vec![(32, 64), (32, 128), (16, 256), (32, 256), (64, 256)];
    let mut series: Vec<Series> = tile_options
        .iter()
        .map(|(tt, si)| Series {
            label: format!("Tile Size = {tt},{si}"),
            points: vec![],
        })
        .collect();
    for &n in &sizes {
        let s = jacobi::JacobiSize { n, t: 4096 };
        for (k, &(tt, si)) in tile_options.iter().enumerate() {
            let p = jacobi::profile_tiled(&s, tt, si, 128, 64, true, &gpu);
            series[k]
                .points
                .push((n as f64, p.estimate(&gpu).expect("fits").total_ms));
        }
    }
    Figure {
        id: "Figure 8".into(),
        title: "1-D Jacobi, larger problem sizes, varying tile sizes".into(),
        x_label: "Problem Size".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(fig: &Figure, a: usize, b: usize, x: f64) -> f64 {
        fig.series[a].at(x).unwrap() / fig.series[b].at(x).unwrap()
    }

    #[test]
    fn figure4_shape_matches_paper() {
        let f = figure4();
        let x = (16u64 << 20) as f64;
        // Paper: scratchpad ≈ 8x over DRAM-only, CPU >100x over smem.
        let dram_over_smem = ratio(&f, 0, 1, x);
        let cpu_over_smem = ratio(&f, 2, 1, x);
        assert!(
            (3.0..30.0).contains(&dram_over_smem),
            "dram/smem = {dram_over_smem}"
        );
        assert!(cpu_over_smem > 30.0, "cpu/smem = {cpu_over_smem}");
        // Time grows with problem size.
        for s in &f.series {
            assert!(s.points.last().unwrap().1 > s.points[0].1);
        }
    }

    #[test]
    fn figure5_shape_matches_paper() {
        let f = figure5();
        let x = (256u64 << 10) as f64;
        let dram_over_smem = ratio(&f, 0, 1, x);
        let cpu_over_smem = ratio(&f, 2, 1, x);
        // Paper: ≈10x and ≈15x.
        assert!(
            (3.0..40.0).contains(&dram_over_smem),
            "dram/smem = {dram_over_smem}"
        );
        assert!(cpu_over_smem > 4.0, "cpu/smem = {cpu_over_smem}");
    }

    #[test]
    fn figure6_search_tiles_win() {
        let f = figure6();
        let x = (16u64 << 20) as f64;
        let best_label = f
            .series
            .iter()
            .min_by(|a, b| a.at(x).unwrap().total_cmp(&b.at(x).unwrap()))
            .unwrap()
            .label
            .clone();
        assert_eq!(best_label, "Tile Size = 32,16,16,16");
    }

    #[test]
    fn figure7_has_u_shape() {
        let f = figure7();
        for s in &f.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            let min = s
                .points
                .iter()
                .map(|(_, y)| *y)
                .fold(f64::INFINITY, f64::min);
            assert!(min < first, "{}: no initial descent", s.label);
            assert!(min < last, "{}: no final ascent", s.label);
            // The optimum is interior.
            let arg = s.argmin().unwrap();
            assert!(arg > 25.0 && arg < 256.0, "{}: argmin {arg}", s.label);
        }
    }

    #[test]
    fn figure8_search_tiles_win() {
        let f = figure8();
        let x = (256u64 << 10) as f64;
        let best_label = f
            .series
            .iter()
            .min_by(|a, b| a.at(x).unwrap().total_cmp(&b.at(x).unwrap()))
            .unwrap()
            .label
            .clone();
        assert_eq!(best_label, "Tile Size = 32,256");
    }

    #[test]
    fn tables_render_all_series() {
        let f = figure4();
        let t = f.to_table();
        assert!(t.contains("GPU with scratchpad"), "{t}");
        assert!(t.contains("CPU"), "{t}");
        assert!(t.contains("64M"), "{t}");
        assert_eq!(fmt_size(8192.0), "8k");
        assert_eq!(fmt_size((64u64 << 20) as f64), "64M");
        assert_eq!(fmt_size(100.0), "100");
    }
}
