//! Criterion benchmarks of the compiler passes themselves: the
//! polyhedral substrate (Fourier–Motzkin, images, scanning) and the
//! full §3 analysis on each kernel. These measure the *tool*, not the
//! simulated machine — the figure harness (`fig4`–`fig8` binaries)
//! covers the paper's performance results.

use criterion::{criterion_group, criterion_main, Criterion};
use polymem_codegen::scan_union;
use polymem_core::deps::compute_deps;
use polymem_core::smem::{analyze_program, SmemConfig};
use polymem_core::tiling::transform::{tile_program, TileSpec};
use polymem_kernels::{jacobi, jacobi2d, matmul, me};
use polymem_poly::dep::DepKind;
use polymem_poly::{Constraint, PolyUnion, Polyhedron, Space};
use std::hint::black_box;

fn poly_box(n_dims: usize, extent: i64) -> Polyhedron {
    let space = Space::anon(n_dims, 0);
    let mut rows = Vec::new();
    for d in 0..n_dims {
        let mut lo = vec![0i64; n_dims + 1];
        lo[d] = 1;
        rows.push(Constraint::ineq(lo));
        let mut hi = vec![0i64; n_dims + 1];
        hi[d] = -1;
        hi[n_dims] = extent;
        rows.push(Constraint::ineq(hi));
    }
    Polyhedron::new(space, rows)
}

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    // Fourier–Motzkin projection of a 6-D box with diagonal cuts.
    let mut p6 = poly_box(6, 100);
    p6.add_constraint(Constraint::ineq(vec![-1, -1, -1, 0, 0, 0, 180]));
    p6.add_constraint(Constraint::ineq(vec![0, 0, 1, -1, 1, -1, 40]));
    g.bench_function("fm_project_6d_to_2d", |b| {
        b.iter(|| black_box(&p6).project_onto(&[0, 1]).unwrap())
    });

    // Affine image of the ME read access over its domain.
    let p = me::program();
    let dom = &p.stmts[0].domain;
    let acc = &p.stmts[0].reads[1]; // Cur[i+k][j+l]
    g.bench_function("affine_image_me_read", |b| {
        b.iter(|| black_box(&acc.map).image(black_box(dom)).unwrap())
    });

    // Union scanning with overlapping members.
    let u = PolyUnion::from_members(vec![poly_box(2, 40), {
        let mut b2 = poly_box(2, 40);
        b2.add_constraint(Constraint::ineq(vec![1, 1, -30]));
        b2
    }])
    .unwrap();
    g.bench_function("scan_union_overlapping", |b| {
        b.iter(|| scan_union(black_box(&u), &[0]).unwrap())
    });

    // Dependence analysis of the Jacobi kernel.
    let jp = jacobi::program();
    g.bench_function("dependence_analysis_jacobi", |b| {
        b.iter(|| {
            compute_deps(
                black_box(&jp),
                &[DepKind::Flow, DepKind::Anti, DepKind::Output],
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("smem_analysis");
    let cfg = |params: Vec<i64>| SmemConfig {
        sample_params: params,
        ..SmemConfig::default()
    };
    let me_p = me::program();
    g.bench_function("analyze_me", |b| {
        b.iter(|| analyze_program(black_box(&me_p), &cfg(vec![64, 64, 16])).unwrap())
    });
    let mm_p = matmul::program();
    g.bench_function("analyze_matmul", |b| {
        b.iter(|| analyze_program(black_box(&mm_p), &cfg(vec![64])).unwrap())
    });
    let j2_p = jacobi2d::program();
    g.bench_function("analyze_jacobi2d", |b| {
        b.iter(|| analyze_program(black_box(&j2_p), &cfg(vec![8, 64])).unwrap())
    });
    g.finish();
}

fn bench_tiling(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiling");
    let p = me::program();
    g.bench_function("tile_me_three_levels", |b| {
        b.iter(|| {
            let l1 =
                tile_program(black_box(&p), &TileSpec::new(&[("i", 64), ("j", 64)], "T")).unwrap();
            let l2 = tile_program(
                &l1,
                &TileSpec::new_before(&[("i", 32), ("j", 16), ("k", 16), ("l", 16)], "p", "i"),
            )
            .unwrap();
            tile_program(&l2, &TileSpec::new_before(&[("i", 8), ("j", 8)], "t", "i")).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_substrate, bench_analysis, bench_tiling);
criterion_main!(benches);
