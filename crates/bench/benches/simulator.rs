//! Criterion benchmarks of the machine simulator: functional
//! block-parallel execution with and without scratchpad staging, and
//! sequential vs crossbeam-parallel block scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use polymem_ir::ArrayStore;
use polymem_kernels::{jacobi, me};
use polymem_machine::{execute_blocked, MachineConfig};
use std::hint::black_box;

fn bench_me_execution(c: &mut Criterion) {
    let cfg = MachineConfig::geforce_8800_gtx();
    let size = me::MeSize {
        ni: 16,
        nj: 16,
        ws: 4,
    };
    let p = me::program();
    let mut base = ArrayStore::for_program(&p, &me::params(&size)).unwrap();
    me::init_store(&mut base, 1);

    let mut g = c.benchmark_group("simulator_me");
    g.sample_size(10);
    for (label, smem, par) in [
        ("dram_seq", false, false),
        ("smem_seq", true, false),
        ("smem_par", true, true),
    ] {
        let kernel = me::blocked_kernel(8, 8, smem);
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut st = base.clone();
                execute_blocked(black_box(&kernel), &me::params(&size), &mut st, &cfg, par).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_jacobi_execution(c: &mut Criterion) {
    let cfg = MachineConfig::geforce_8800_gtx();
    let s = jacobi::JacobiSize { n: 128, t: 8 };
    let p = jacobi::program();
    let mut base = ArrayStore::for_program(&p, &jacobi::params(&s)).unwrap();
    jacobi::init_store(&mut base, 1);

    let mut g = c.benchmark_group("simulator_jacobi");
    g.sample_size(10);
    let stepwise = jacobi::stepwise_kernel(16, false);
    g.bench_function("stepwise_rounds", |b| {
        b.iter(|| {
            let mut st = base.clone();
            execute_blocked(
                black_box(&stepwise),
                &jacobi::params(&s),
                &mut st,
                &cfg,
                true,
            )
            .unwrap()
        })
    });
    let overlapped = jacobi::overlapped_kernel(4, 32, false);
    g.bench_function("overlapped_time_tiles", |b| {
        b.iter(|| {
            let mut st = base.clone();
            execute_blocked(
                black_box(&overlapped),
                &jacobi::params(&s),
                &mut st,
                &cfg,
                true,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_me_execution, bench_jacobi_execution);
criterion_main!(benches);
