//! Criterion benchmarks of the §4.3 tile-size search: the SQP-style
//! continuous solver vs the exact pruned discrete enumeration, on the
//! paper's two kernels. Besides speed, the harness asserts (once, at
//! setup) that the two solvers agree on quality within tolerance —
//! the "SQP vs discrete" ablation of DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use polymem_core::tiling::{search_discrete, search_sqp};
use polymem_kernels::me;
use polymem_machine::MachineConfig;
use std::hint::black_box;

fn me_problem() -> polymem_core::tiling::TileSizeProblem {
    let machine = MachineConfig::geforce_8800_gtx();
    let size = me::MeSize::square(1 << 22, 16);
    polymem_core::tiling::TileSizeProblem {
        cost: me::cost_model(&size),
        params: machine.cost_params(256.0),
        mem_limit: (machine.smem_bytes / machine.word_bytes) as f64,
    }
}

fn bench_search(c: &mut Criterion) {
    let problem = me_problem();
    // Quality ablation (checked once): the continuous solver must land
    // within 25% of the exact discrete optimum.
    let d = search_discrete(&problem, None);
    let s = search_sqp(&problem);
    assert!(
        s.cost <= d.cost * 1.25 + 1.0,
        "sqp quality regressed: {} vs {}",
        s.cost,
        d.cost
    );

    let mut g = c.benchmark_group("tile_search");
    g.bench_function("discrete_me", |b| {
        b.iter(|| search_discrete(black_box(&problem), None))
    });
    g.bench_function("sqp_me", |b| b.iter(|| search_sqp(black_box(&problem))));
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
