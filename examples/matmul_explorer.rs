//! Scratchpad planning for matrix multiplication, with movement
//! hoisting and a GPU-vs-Cell comparison.
//!
//! Matmul shows two framework features the paper's kernels only touch
//! in passing: Algorithm 1 firing on *all* arrays (every access is
//! rank-deficient), and §4.2 hoisting — the `C` buffer's movement code
//! leaves the `k`-tile loop because `k` is redundant for `C[i][j]`.
//!
//! ```sh
//! cargo run --release --example matmul_explorer
//! ```

use polymem::core::smem::dataspace::collect_refs;
use polymem::core::smem::{analyze_program, SmemConfig};
use polymem::core::tiling::placement_level;
use polymem::ir::ArrayStore;
use polymem::kernels::matmul;
use polymem::machine::{execute_blocked, MachineConfig};

fn main() {
    let p = matmul::program();
    println!("== Kernel ==\n{p}");

    // Algorithm 1 decisions.
    let plan = analyze_program(
        &p,
        &SmemConfig {
            sample_params: vec![64],
            ..SmemConfig::default()
        },
    )
    .expect("analysis");
    println!("== Algorithm 1 (reuse) decisions ==");
    for (array, d) in &plan.decisions {
        println!(
            "  {array}: beneficial = {}, rank-deficient = {}",
            d.beneficial, d.order_of_magnitude
        );
    }

    // §4.2 movement placement over the (iT, jT, kT) tile loops.
    println!("\n== Movement placement (tile loops i, j, k) ==");
    for name in ["A", "B", "C"] {
        let ai = p.array_index(name).expect("array");
        let refs = collect_refs(&p, ai).expect("refs");
        let members: Vec<&_> = refs.iter().collect();
        let level = placement_level(&members, &[0, 1, 2]);
        let note = match (name, level) {
            ("C", 2) => " (hoisted past the k-tile loop: C is reused across k)",
            _ => "",
        };
        println!("  {name}: inside {level} tile loops{note}");
    }

    // Execute on a GPU-like and a Cell-like machine; the Cell *must*
    // stage everything (no global access during compute).
    let n = 12i64;
    let mut base = ArrayStore::for_program(&p, &[n]).expect("store");
    matmul::init_store(&mut base, 77);
    let mut expected = base.clone();
    matmul::reference(&mut expected, n);

    for (label, cfg) in [
        ("GeForce 8800 GTX", MachineConfig::geforce_8800_gtx()),
        (
            "Cell-like (mandatory local store)",
            MachineConfig::cell_like(),
        ),
    ] {
        let mut st = base.clone();
        let kernel = matmul::blocked_kernel(4, 4, 6, true);
        let stats = execute_blocked(&kernel, &[n], &mut st, &cfg, true).expect("run");
        assert_eq!(st.data("C").unwrap(), expected.data("C").unwrap());
        println!(
            "\n== {label} ==\n  result == reference ✓; global reads {}, smem reads {}, moved in {} / out {}",
            stats.global_reads, stats.smem_reads, stats.moved_in, stats.moved_out
        );
        if stats.global_reads == stats.moved_in {
            println!("  all compute traffic served from the local store (Cell semantics)");
        }
    }
}
