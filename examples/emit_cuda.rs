//! Emit the CUDA-like kernel the paper's system would generate for the
//! tiled, scratchpad-staged motion-estimation block.
//!
//! The listing is rendered from the compiler's actual data structures:
//! the `__shared__` declarations come from Algorithm 2's buffers, the
//! copy loops from the generated movement ASTs, and the subscripts are
//! the rewritten `F'(y) − g` local access functions the simulator
//! executes.
//!
//! ```sh
//! cargo run --example emit_cuda
//! ```

use polymem::core::emit::{emit_staged, EmitOptions};
use polymem::core::smem::{analyze_program, SmemConfig};
use polymem::core::tiling::transform::{fix_dims, tile_program, TileSpec};
use polymem::kernels::me;
use std::collections::HashMap;

fn main() {
    // Tile ME for thread blocks, then restrict to a representative
    // block (the emitted kernel body is the per-block program, as in
    // CUDA, with iT/jT bound from blockIdx).
    let p = me::program();
    let tiled =
        tile_program(&p, &TileSpec::new(&[("i", 32), ("j", 16)], "T")).expect("tiling is legal");

    // Plan scratchpad staging for one tile to fix buffer shapes; the
    // emitted subscripts stay symbolic in the tile indices.
    let mut fixed = HashMap::new();
    fixed.insert("iT".to_string(), 0);
    fixed.insert("jT".to_string(), 0);
    let mut view = tiled.clone();
    for s in &mut view.stmts {
        s.domain = fix_dims(&s.domain, &fixed);
    }
    let plan = analyze_program(
        &view,
        &SmemConfig {
            sample_params: vec![1024, 1024, 16],
            ..SmemConfig::default()
        },
    )
    .expect("plan");

    let opts = EmitOptions {
        cuda: true,
        block_dims: vec!["iT".into(), "jT".into()],
        thread_dims: vec!["i".into(), "j".into()],
    };
    println!("// polymem-generated kernel (paper-style CUDA flavour)");
    println!("// tile (32, 16), window (16, 16); buffers sized by Algorithm 2");
    print!("{}", emit_staged(&view, &plan, &opts));
}
