//! Quickstart: run the automatic scratchpad data-management framework
//! on the paper's Fig. 1 example and print everything it produces —
//! local buffer declarations, rewritten accesses, and generated
//! move-in/move-out code.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use polymem::core::smem::{analyze_program, AccessId, SmemConfig};
use polymem::ir::expr::v;
use polymem::ir::{Expr, LinExpr, ProgramBuilder};

fn main() {
    // The paper's Fig. 1 input block:
    //   A[200][200]; B[200][200];
    //   for (i=10;i<=14;i++)
    //     for (j=10;j<=14;j++) {
    //       A[i][j+1] = A[i+j][j+1]*3;
    //       for (k=11;k<=20;k++)
    //         B[i][j+k] = A[i][k] + B[i+j][k];
    //     }
    let mut b = ProgramBuilder::new("fig1", Vec::<String>::new());
    b.array("A", &[LinExpr::c(200), LinExpr::c(200)]);
    b.array("B", &[LinExpr::c(200), LinExpr::c(200)]);
    b.stmt("S1")
        .loops(&[
            ("i", LinExpr::c(10), LinExpr::c(14)),
            ("j", LinExpr::c(10), LinExpr::c(14)),
        ])
        .write("A", &[v("i"), v("j") + 1])
        .read("A", &[v("i") + v("j"), v("j") + 1])
        .body(Expr::mul(Expr::Read(0), Expr::Const(3)))
        .done();
    b.stmt("S2")
        .loops(&[
            ("i", LinExpr::c(10), LinExpr::c(14)),
            ("j", LinExpr::c(10), LinExpr::c(14)),
            ("k", LinExpr::c(11), LinExpr::c(20)),
        ])
        .write("B", &[v("i"), v("j") + v("k")])
        .read("A", &[v("i"), v("k")])
        .read("B", &[v("i") + v("j"), v("k")])
        .body(Expr::add(Expr::Read(0), Expr::Read(1)))
        .done();
    let program = b.build().expect("valid program");

    println!("== Input block ==\n{program}");

    // Fig. 1 mode: one buffer per array (no disjoint-region splitting).
    let plan = analyze_program(
        &program,
        &SmemConfig {
            partition: false,
            ..SmemConfig::default()
        },
    )
    .expect("analysis succeeds");

    println!("== Local memory storage ==");
    for buf in &plan.buffers {
        println!(
            "{}   // offsets {:?}, {} words",
            buf.render_decl(&program.params),
            buf.offsets(&[]).expect("bounded"),
            buf.size_words(&[]).expect("bounded"),
        );
    }

    println!("\n== Rewritten accesses ==");
    for (si, stmt) in program.stmts.iter().enumerate() {
        let render = |id: AccessId| {
            plan.rewrites
                .get(&id)
                .map(|la| la.render(&plan.buffers[la.buffer], &program.params))
        };
        if let Some(w) = render(AccessId::write(si)) {
            println!("{}: write -> {w}", stmt.name);
        }
        for k in 0..stmt.reads.len() {
            if let Some(r) = render(AccessId::read(si, k)) {
                println!("{}: read {k} -> {r}", stmt.name);
            }
        }
    }

    println!("\n== Data movement code ==");
    for mc in &plan.movement {
        let buf = &plan.buffers[mc.buffer];
        let g = buf.offsets(&[]).expect("bounded");
        let a = &buf.array_name;
        let leaf_in = |_: usize| {
            format!(
                "L{a}[{a}_0 - {0}][{a}_1 - {1}] = {a}[{a}_0][{a}_1];",
                g[0], g[1]
            )
        };
        let leaf_out = |_: usize| {
            format!(
                "{a}[{a}_0][{a}_1] = L{a}[{a}_0 - {0}][{a}_1 - {1}];",
                g[0], g[1]
            )
        };
        println!("/* Array {} */", buf.array_name);
        println!(
            "/* Data move in code ({} elements) */",
            mc.move_in_count(&[])
        );
        print!("{}", mc.move_in.to_c(&program.params, &leaf_in));
        println!(
            "/* Data move out code ({} elements) */",
            mc.move_out_count(&[])
        );
        print!("{}", mc.move_out.to_c(&program.params, &leaf_out));
        println!();
    }
}
