//! MPEG-4 Motion Estimation end-to-end (the paper's headline kernel).
//!
//! Walks the full pipeline on the Fig. 2 kernel: dependence analysis
//! and band classification, the §4.3 tile-size search on the simulated
//! GeForce 8800 GTX, functional validation of the staged execution
//! against a native reference, and a Fig. 4-style timing comparison.
//!
//! ```sh
//! cargo run --release --example motion_estimation
//! ```

use polymem::core::tiling::{find_permutable_band, tilable_prefix};
use polymem::ir::{exec_program, ArrayStore};
use polymem::kernels::me;
use polymem::machine::{execute_blocked, MachineConfig};

fn main() {
    let p = me::program();
    println!("== Kernel (paper Fig. 2) ==\n{p}");

    // §4.1: parallelism detection.
    let band = find_permutable_band(&p).expect("band analysis");
    println!(
        "Permutable band: loops {:?}, kinds {:?}; lex-forward prefix: {} loops",
        band.loops,
        band.kinds,
        tilable_prefix(&p).expect("tilable analysis"),
    );
    println!(
        "Space loops (across thread blocks/threads): {:?}",
        band.space_loops()
    );
    // Size-aware legality: the paper's four-loop tiling is valid
    // because its (k, l) tiles cover the whole search window.
    let spec =
        polymem::core::tiling::TileSpec::new(&[("i", 32), ("j", 16), ("k", 16), ("l", 16)], "T");
    let verdict = polymem::core::tiling::check_tiling(&p, &spec, Some(&[1024, 1024, 16]))
        .expect("legality analysis");
    println!("Tiling (32,16,16,16) legality: {:?}\n", verdict);

    // §4.3: tile-size search on the paper's machine.
    let gpu = MachineConfig::geforce_8800_gtx();
    let size = me::MeSize::square(1 << 22, 16);
    let found = me::search_tiles(&size, &gpu, 256);
    println!(
        "Tile-size search ({} positions, 256 threads, 16 KB scratchpad):",
        size.positions()
    );
    println!(
        "  optimal (ti, tj, tk, tl) = {:?}  [paper: (32, 16, 16, 16)], cost {:.1}\n",
        found.sizes, found.cost
    );

    // Functional validation on a small instance.
    let small = me::MeSize {
        ni: 12,
        nj: 10,
        ws: 4,
    };
    let mut st = ArrayStore::for_program(&p, &me::params(&small)).expect("store");
    me::init_store(&mut st, 2024);
    let mut reference = st.clone();
    exec_program(&p, &me::params(&small), &mut reference).expect("reference run");
    let kernel = me::blocked_kernel(4, 5, true);
    let stats =
        execute_blocked(&kernel, &me::params(&small), &mut st, &gpu, true).expect("simulated run");
    assert_eq!(st.data("Sad").unwrap(), reference.data("Sad").unwrap());
    println!("Functional validation: staged result == reference  ✓");
    println!(
        "  blocks {}, instances {}, moved in {} / out {}, smem peak {} words",
        stats.blocks, stats.instances, stats.moved_in, stats.moved_out, stats.max_smem_words
    );
    println!(
        "  global traffic with staging: {} reads (DRAM-only would issue {})\n",
        stats.global_reads,
        stats.instances * 2
    );

    // Fig. 4-style comparison at a large size.
    let big = me::MeSize::square(16 << 20, 16);
    let cpu = MachineConfig::host_cpu();
    let t_dram = me::profile(&big, (32, 16), 32, 256, false, &gpu)
        .estimate(&gpu)
        .expect("fits")
        .total_ms;
    let t_smem = me::profile(&big, (32, 16), 32, 256, true, &gpu)
        .estimate(&gpu)
        .expect("fits")
        .total_ms;
    let t_cpu = me::profile(&big, (32, 16), 32, 256, false, &gpu)
        .estimate_cpu(&cpu)
        .total_ms;
    println!("== 16M positions, simulated times (paper Fig. 4 point) ==");
    println!("  GPU w/o scratchpad : {t_dram:10.1} ms");
    println!(
        "  GPU with scratchpad: {t_smem:10.1} ms   ({:.1}x)",
        t_dram / t_smem
    );
    println!(
        "  CPU                : {t_cpu:10.1} ms   ({:.1}x vs staged GPU)",
        t_cpu / t_smem
    );
}
