//! Time-tiled 1-D Jacobi with concurrent start.
//!
//! Demonstrates the synchronisation-bound half of the paper's
//! evaluation: skewing for a tilable band, overlapped time tiles with
//! device-wide barriers between rounds, the Fig. 7 thread-block
//! sweet-spot, and the Fig. 8 tile-size search under the paper's
//! `M_up = 2^9`-word per-block scratchpad limit.
//!
//! ```sh
//! cargo run --release --example jacobi_stencil
//! ```

use polymem::core::tiling::find_permutable_band;
use polymem::ir::ArrayStore;
use polymem::kernels::jacobi;
use polymem::machine::{execute_blocked, MachineConfig};

fn main() {
    // Band structure before and after skewing.
    let plain = jacobi::program();
    let skewed = jacobi::skewed_program();
    let b0 = find_permutable_band(&plain).expect("band");
    let b1 = find_permutable_band(&skewed).expect("band");
    println!("== Band analysis ==");
    println!(
        "unskewed: band {:?} {:?} (time loop only — no tilable space band)",
        b0.loops, b0.kinds
    );
    println!(
        "skewed (s = 2t + i): band {:?} {:?} — pipelined space loop available\n",
        b1.loops, b1.kinds
    );

    // Functional validation of the overlapped time-tiled mapping.
    let gpu = MachineConfig::geforce_8800_gtx();
    let s = jacobi::JacobiSize { n: 64, t: 12 };
    let mut st = ArrayStore::for_program(&plain, &jacobi::params(&s)).expect("store");
    jacobi::init_store(&mut st, 7);
    let mut reference = st.clone();
    jacobi::reference(&mut reference, &s);
    let kernel = jacobi::overlapped_kernel(4, 16, false);
    let stats = execute_blocked(&kernel, &jacobi::params(&s), &mut st, &gpu, true).expect("run");
    assert_eq!(st.data("A").unwrap(), reference.data("A").unwrap());
    println!("== Overlapped time tiles (tt = 4, si = 16) ==");
    println!("result == reference  ✓");
    println!(
        "rounds {} (device-wide barriers between time tiles), instances {} (incl. redundant halo recompute; base {})\n",
        stats.rounds,
        stats.instances,
        s.n * s.t
    );

    // Fig. 7: block-count sweep for a scratchpad-resident size.
    println!("== Thread-block sweep, N = 32k resident (paper Fig. 7) ==");
    let size = jacobi::JacobiSize {
        n: 32 * 1024,
        t: 4096,
    };
    for b in [25u64, 64, 128, 192, 256] {
        let t = jacobi::profile_resident(&size, 32, b, 64, &gpu)
            .estimate(&gpu)
            .expect("fits")
            .total_ms;
        println!("  {b:4} blocks: {t:8.2} ms");
    }

    // Fig. 8: tile-size search under M_up = 2^9 words.
    let big = jacobi::JacobiSize {
        n: 512 * 1024,
        t: 4096,
    };
    let (tt, si, ms) = jacobi::search_tiles(&big, 128, 64, 512, &gpu);
    println!("\n== Tile-size search, N = 512k, M_up = 512 words (paper Fig. 8) ==");
    println!("  optimal (time, space) = ({tt}, {si})  [paper: (32, 256)], {ms:.1} ms");
}
